/**
 * @file
 * The event closure type: a small-buffer-optimized, move-only
 * replacement for std::function<void()> on the simulator hot path.
 *
 * Every simulated I/O schedules dozens of events whose closures
 * capture an object pointer plus a few words of arguments — just past
 * std::function's 16-byte inline buffer, so the old event core paid a
 * heap allocation per event. EventFn stores callables up to
 * kInlineSize bytes inline; trivially copyable captures (the common
 * case: pointers and integers) move by memcpy and destroy for free.
 * Larger or over-aligned callables fall back to a heap slot, so any
 * `void()` callable is still accepted.
 *
 * Invoking an empty EventFn is a precondition violation (checked in
 * debug builds); the EventQueue rejects null callbacks at schedule
 * time, so an EventFn that fires is never empty.
 */

#ifndef AFA_SIM_EVENT_FN_HH
#define AFA_SIM_EVENT_FN_HH

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace afa::sim {

/** Move-only type-erased `void()` callable with inline storage. */
class EventFn
{
  public:
    /** Inline capture budget; sized for the simulator's largest
     *  common closures (an object pointer + ~3 words) while keeping
     *  the EventQueue's per-event record within one cache line. */
    static constexpr std::size_t kInlineSize = 32;

    EventFn() noexcept = default;
    EventFn(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventFn> &&
                  std::is_invocable_r_v<void, D &>>>
    EventFn(F &&f)
    {
        init(std::forward<F>(f));
    }

    /**
     * Replace the stored callable, constructing @p f in place -- one
     * construction instead of the construct + move of `fn = F{...}`.
     * Accepts an EventFn as well (plain move assignment).
     */
    template <typename F, typename D = std::decay_t<F>>
    void
    assign(F &&f)
    {
        if constexpr (std::is_same_v<D, EventFn>) {
            *this = std::forward<F>(f);
        } else {
            reset();
            init(std::forward<F>(f));
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** True when a callable is stored. */
    explicit operator bool() const noexcept { return ops != nullptr; }

    friend bool
    operator==(const EventFn &fn, std::nullptr_t) noexcept
    {
        return fn.ops == nullptr;
    }

    /** Invoke the stored callable (must not be empty). */
    void
    operator()()
    {
        assert(ops && "invoking an empty EventFn");
        ops->invoke(storage);
    }

  private:
    template <typename F, typename D = std::decay_t<F>>
    void
    init(F &&f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(storage)) D(std::forward<F>(f));
            ops = &inlineOps<D>;
        } else {
            *reinterpret_cast<D **>(storage) = new D(std::forward<F>(f));
            ops = &heapOps<D>;
        }
    }

    struct OpsTable
    {
        void (*invoke)(void *self);
        /** Move-construct dst from src, then destroy src; nullptr
         *  means "relocate by memcpy of the whole buffer". */
        void (*relocate)(void *dst, void *src);
        /** Destroy the stored callable; nullptr means trivial. */
        void (*destroy)(void *self);
    };

    /** Inline requires fitting storage, pointer alignment, and a
     *  noexcept move (relocation must not fail mid-flight). */
    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= kInlineSize && alignof(D) <= alignof(void *) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    static D *
    inlinePtr(void *s) noexcept
    {
        return std::launder(reinterpret_cast<D *>(s));
    }

    template <typename D>
    static void
    inlineInvoke(void *s)
    {
        (*inlinePtr<D>(s))();
    }

    template <typename D>
    static void
    inlineRelocate(void *dst, void *src)
    {
        D *p = inlinePtr<D>(src);
        ::new (dst) D(std::move(*p));
        p->~D();
    }

    template <typename D>
    static void
    inlineDestroy(void *s)
    {
        inlinePtr<D>(s)->~D();
    }

    template <typename D>
    static constexpr OpsTable
    makeInlineOps()
    {
        // Trivially copyable captures (the common case: pointers and
        // integers) relocate by memcpy and need no destructor.
        if constexpr (std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>) {
            return {&inlineInvoke<D>, nullptr, nullptr};
        } else {
            return {&inlineInvoke<D>, &inlineRelocate<D>,
                    &inlineDestroy<D>};
        }
    }

    template <typename D>
    static constexpr OpsTable inlineOps = makeInlineOps<D>();

    template <typename D>
    static void
    heapInvoke(void *s)
    {
        (**reinterpret_cast<D **>(s))();
    }

    template <typename D>
    static void
    heapDestroy(void *s)
    {
        delete *reinterpret_cast<D **>(s);
    }

    // Heap slots relocate by memcpy too (only the pointer is live;
    // copying the rest of the buffer is harmless).
    template <typename D>
    static constexpr OpsTable heapOps = {
        &heapInvoke<D>, nullptr, &heapDestroy<D>};

    void
    moveFrom(EventFn &other) noexcept
    {
        ops = other.ops;
        if (ops) {
            if (ops->relocate)
                ops->relocate(storage, other.storage);
            else
                std::memcpy(storage, other.storage, kInlineSize);
            other.ops = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops) {
            if (ops->destroy)
                ops->destroy(storage);
            ops = nullptr;
        }
    }

    const OpsTable *ops = nullptr;
    alignas(void *) unsigned char storage[kInlineSize];
};

} // namespace afa::sim

#endif // AFA_SIM_EVENT_FN_HH
