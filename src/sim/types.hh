/**
 * @file
 * Fundamental simulation types: ticks (integer nanoseconds) and
 * convenience duration constructors.
 */

#ifndef AFA_SIM_TYPES_HH
#define AFA_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace afa::sim {

/** Simulated time in integer nanoseconds. */
using Tick = std::uint64_t;

/** A tick value that never arrives; used as "no deadline". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** One nanosecond expressed in ticks. */
constexpr Tick kNsec = 1;
/** One microsecond expressed in ticks. */
constexpr Tick kUsec = 1000 * kNsec;
/** One millisecond expressed in ticks. */
constexpr Tick kMsec = 1000 * kUsec;
/** One second expressed in ticks. */
constexpr Tick kSec = 1000 * kMsec;

/** Construct a tick count from nanoseconds. */
constexpr Tick nsec(double n) { return static_cast<Tick>(n * kNsec); }
/** Construct a tick count from microseconds. */
constexpr Tick usec(double n) { return static_cast<Tick>(n * kUsec); }
/** Construct a tick count from milliseconds. */
constexpr Tick msec(double n) { return static_cast<Tick>(n * kMsec); }
/** Construct a tick count from seconds. */
constexpr Tick sec(double n) { return static_cast<Tick>(n * kSec); }

/** Convert ticks to (fractional) microseconds. */
constexpr double toUsec(Tick t) { return static_cast<double>(t) / kUsec; }
/** Convert ticks to (fractional) milliseconds. */
constexpr double toMsec(Tick t) { return static_cast<double>(t) / kMsec; }
/** Convert ticks to (fractional) seconds. */
constexpr double toSec(Tick t) { return static_cast<double>(t) / kSec; }

} // namespace afa::sim

#endif // AFA_SIM_TYPES_HH
