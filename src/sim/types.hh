/**
 * @file
 * Fundamental simulation types: ticks (integer nanoseconds) and
 * convenience duration constructors.
 */

#ifndef AFA_SIM_TYPES_HH
#define AFA_SIM_TYPES_HH

#include <compare>
#include <cstdint>
#include <limits>

namespace afa::sim {

/** Simulated time in integer nanoseconds. */
using Tick = std::uint64_t;

/** A tick value that never arrives; used as "no deadline". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** One nanosecond expressed in ticks. */
constexpr Tick kNsec = 1;
/** One microsecond expressed in ticks. */
constexpr Tick kUsec = 1000 * kNsec;
/** One millisecond expressed in ticks. */
constexpr Tick kMsec = 1000 * kUsec;
/** One second expressed in ticks. */
constexpr Tick kSec = 1000 * kMsec;

/** Construct a tick count from nanoseconds. */
constexpr Tick nsec(double n) { return static_cast<Tick>(n * kNsec); }
/** Construct a tick count from microseconds. */
constexpr Tick usec(double n) { return static_cast<Tick>(n * kUsec); }
/** Construct a tick count from milliseconds. */
constexpr Tick msec(double n) { return static_cast<Tick>(n * kMsec); }
/** Construct a tick count from seconds. */
constexpr Tick sec(double n) { return static_cast<Tick>(n * kSec); }

/** Convert ticks to (fractional) microseconds. */
constexpr double toUsec(Tick t) { return static_cast<double>(t) / kUsec; }
/** Convert ticks to (fractional) milliseconds. */
constexpr double toMsec(Tick t) { return static_cast<double>(t) / kMsec; }
/** Convert ticks to (fractional) seconds. */
constexpr double toSec(Tick t) { return static_cast<double>(t) / kSec; }

// ---------------------------------------------------------------------
// Strong unit wrappers.
//
// Tick stays a bare integer for queue/clock arithmetic, but interface
// parameters that are *not* absolute sim times should not be: a byte
// count, a duration, or a host wall-clock delta silently converts
// into Tick otherwise. TickDelta and Bytes are explicit-construction
// wrappers for those quantities; the only sanctioned crossings between
// the unit domains are the named helpers in this header, which the
// tick-units rule of tools/detlint/detlint_ast.py allowlists (see
// DESIGN.md "Static-analysis contract").
// ---------------------------------------------------------------------

/**
 * A signed span of simulated time (a difference of Ticks): lookahead
 * horizons, propagation delays, backoff windows. Signed so that
 * "earlier - later" stays representable during interval arithmetic.
 */
struct TickDelta
{
    std::int64_t ticks = 0;

    TickDelta() = default;
    explicit constexpr TickDelta(std::int64_t t) : ticks(t) {}

    /** The span in integer nanosecond ticks. */
    constexpr std::int64_t count() const { return ticks; }

    constexpr bool operator==(const TickDelta &) const = default;
    constexpr auto operator<=>(const TickDelta &) const = default;

    constexpr TickDelta operator+(TickDelta o) const
    {
        return TickDelta{ticks + o.ticks};
    }
    constexpr TickDelta operator-(TickDelta o) const
    {
        return TickDelta{ticks - o.ticks};
    }
    constexpr TickDelta operator-() const { return TickDelta{-ticks}; }
};

/** The span from @p earlier to @p later (negative if reversed). */
constexpr TickDelta
delta(Tick later, Tick earlier)
{
    return TickDelta{static_cast<std::int64_t>(later) -
                     static_cast<std::int64_t>(earlier)};
}

/** Advance an absolute time by a span. */
constexpr Tick
operator+(Tick t, TickDelta d)
{
    return t + static_cast<Tick>(d.count());
}

/** Rewind an absolute time by a span. */
constexpr Tick
operator-(Tick t, TickDelta d)
{
    return t - static_cast<Tick>(d.count());
}

/**
 * A payload size. Distinct from Tick so byte counts cannot flow into
 * time arithmetic except through an explicit rate conversion.
 */
struct Bytes
{
    std::uint64_t n = 0;

    Bytes() = default;
    explicit constexpr Bytes(std::uint64_t count) : n(count) {}

    /** The size in bytes. */
    constexpr std::uint64_t count() const { return n; }

    constexpr bool operator==(const Bytes &) const = default;
    constexpr auto operator<=>(const Bytes &) const = default;

    constexpr Bytes operator+(Bytes o) const { return Bytes{n + o.n}; }
    constexpr Bytes operator-(Bytes o) const { return Bytes{n - o.n}; }
    constexpr Bytes &
    operator+=(Bytes o)
    {
        n += o.n;
        return *this;
    }
};

/**
 * The sanctioned Bytes -> time crossing: serialization time of
 * @p payload at @p bytes_per_sec. Mirrors the hand-rolled
 * bytes / rate * 1e9 conversions it replaced exactly (same division
 * and multiplication order) so figures stay bit-identical.
 */
constexpr Tick
transferTicks(Bytes payload, double bytes_per_sec)
{
    return static_cast<Tick>(
        static_cast<double>(payload.count()) / bytes_per_sec * 1e9);
}

} // namespace afa::sim

#endif // AFA_SIM_TYPES_HH
