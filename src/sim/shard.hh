/**
 * @file
 * The thread-local shard cursor.
 *
 * A sharded Simulator (see simulator.hh) runs one worker thread per
 * shard; every SimObject API call routes through the shard the calling
 * thread is executing, so model code stays shard-oblivious. The cursor
 * lives here, outside simulator.hh, so observability code (per-shard
 * span lanes) can ask "which shard am I on?" without pulling in the
 * whole simulator.
 */

#ifndef AFA_SIM_SHARD_HH
#define AFA_SIM_SHARD_HH

namespace afa::sim {

/**
 * Shard executing on the current thread; 0 outside any sharded
 * context (serial runs, tests, setup code). Written only by the
 * owning thread (worker startup, ShardScope), so although it is a
 * namespace-scope mutable, it is per-thread state, never shared.
 */
extern thread_local unsigned t_currentShard; // detlint:allow(mutable-static)

/** Shard the calling thread is executing on (0 in serial runs). */
inline unsigned
currentShard() noexcept
{
    return t_currentShard;
}

} // namespace afa::sim

#endif // AFA_SIM_SHARD_HH
