#include "sim/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace afa::sim {

namespace {

// Atomics: worker threads of a parallel experiment sweep read
// these concurrently with main-thread configuration.
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<bool> g_throw{false};

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setThrowOnError(bool enable)
{
    g_throw.store(enable, std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    if (g_throw.load(std::memory_order_relaxed))
        throw SimError{"panic: " + msg};
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    if (g_throw.load(std::memory_order_relaxed))
        throw SimError{"fatal: " + msg};
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debug(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "debug: %s\n", msg.c_str());
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace afa::sim
