#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace afa::sim {

namespace {

LogLevel g_level = LogLevel::Warn;
bool g_throw = false;

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
setThrowOnError(bool enable)
{
    g_throw = enable;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    if (g_throw)
        throw SimError{"panic: " + msg};
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    if (g_throw)
        throw SimError{"fatal: " + msg};
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "debug: %s\n", msg.c_str());
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace afa::sim
