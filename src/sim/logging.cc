#include "sim/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/sync.hh"
#include "core/thread_annotations.hh"

namespace afa::sim {

namespace {

// Global logger state and its concurrency contract
// -------------------------------------------------
//
// Worker threads of a parallel experiment sweep call warn()/inform()/
// debug() concurrently while the main thread may call setLogLevel()/
// setThrowOnError(). Two pieces of shared state make that safe:
//
//  * g_level / g_throw are std::atomic with relaxed ordering. They
//    are pure configuration flags: no other memory is published
//    through them, so no acquire/release pairing is needed. A racing
//    setLogLevel() may let an in-flight message through under the old
//    verbosity, which is acceptable for logging. Crucially they never
//    feed simulation state, so they cannot perturb results.
//
//  * g_sink serialises the actual stream writes so a message is
//    emitted as one unbroken line even when several workers log at
//    once (stdio locks per call, but a prefix+body+newline emitted as
//    separate calls could interleave).
//
// Both are mutable process-globals, which detlint bans in simulator
// code precisely because shared state is how nondeterminism leaks
// into figures; logging is the audited exception since nothing here
// flows back into the simulation.
std::atomic<LogLevel> g_level{LogLevel::Warn}; // detlint:allow(mutable-static)
std::atomic<bool> g_throw{false}; // detlint:allow(mutable-static)

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

/**
 * Serialises emission of formatted log lines.
 *
 * Holding one process-wide mutex per line keeps concurrent workers'
 * messages whole without imposing any ordering between threads (the
 * arrival order of lines from different workers is unspecified, their
 * contents are not).
 */
class LogSink
{
  public:
    void write(std::FILE *stream, const char *prefix,
               const std::string &msg) AFA_EXCLUDES(mutex)
    {
        afa::sync::MutexLock lock(mutex);
        std::fprintf(stream, "%s: %s\n", prefix, msg.c_str());
    }

  private:
    afa::sync::Mutex mutex;
};

LogSink g_sink; // detlint:allow(mutable-static)

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setThrowOnError(bool enable)
{
    g_throw.store(enable, std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    if (g_throw.load(std::memory_order_relaxed))
        throw SimError{"panic: " + msg};
    g_sink.write(stderr, "panic", msg);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    if (g_throw.load(std::memory_order_relaxed))
        throw SimError{"fatal: " + msg};
    g_sink.write(stderr, "fatal", msg);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    g_sink.write(stderr, "warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    g_sink.write(stdout, "info", msg);
}

void
debug(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    g_sink.write(stdout, "debug", msg);
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace afa::sim
