/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every source of randomness in AFASim flows from a seeded root Rng.
 * Components obtain independent streams via fork(), which derives a new
 * generator deterministically from the parent seed and a stream tag.
 * This keeps whole-system experiments reproducible from a single
 * --seed while letting components draw independently.
 *
 * The generator is xoshiro256++ (public domain, Blackman & Vigna),
 * seeded through splitmix64.
 */

#ifndef AFA_SIM_RANDOM_HH
#define AFA_SIM_RANDOM_HH

#include <cstdint>
#include <string_view>

namespace afa::sim {

/** splitmix64 step; used for seeding and hash mixing. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Mix a string tag into a 64-bit value (FNV-1a based). */
std::uint64_t hashTag(std::string_view tag);

/**
 * A deterministic pseudo-random generator with the distribution
 * helpers the latency models need.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Derive an independent child stream tagged by @p tag. */
    Rng fork(std::string_view tag) const;

    /** Derive an independent child stream tagged by an index. */
    Rng fork(std::uint64_t tag) const;

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /** Standard normal deviate (Box-Muller with caching). */
    double normal();

    /** Normal deviate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal deviate parameterised by its *median* and the sigma
     * of the underlying normal. Median parameterisation is convenient
     * for latency models: median is the typical value, sigma the
     * relative spread.
     */
    double lognormal(double median, double sigma);

    /** Exponential deviate with the given mean. */
    double exponential(double mean);

    /**
     * Pareto (type I) deviate: minimum @p xm, shape @p alpha.
     * Heavy-tailed; used for rare firmware hiccups.
     */
    double pareto(double xm, double alpha);

    /** The seed this generator was constructed with. */
    std::uint64_t seed() const { return _seed; }

  private:
    std::uint64_t _seed;
    std::uint64_t s[4];
    double cachedNormal;
    bool hasCachedNormal;
};

} // namespace afa::sim

#endif // AFA_SIM_RANDOM_HH
