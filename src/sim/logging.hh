/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits(1).
 * warn()   - something is suspicious but simulation can continue.
 * inform() - status messages for the user.
 *
 * All functions accept printf-style format strings and are checked by
 * the compiler.
 *
 * Thread safety: every function here may be called concurrently from
 * parallel-sweep workers. Verbosity/throw configuration is relaxed
 * atomics (a racing setLogLevel() may let an in-flight message
 * through under the old level; nothing tears), and emitted lines are
 * serialised by a mutex so they never interleave mid-line. See the
 * contract comment in logging.cc.
 */

#ifndef AFA_SIM_LOGGING_HH
#define AFA_SIM_LOGGING_HH

#include <stdexcept>
#include <string>

namespace afa::sim {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet,  ///< only panic/fatal output
    Warn,   ///< warnings and errors
    Info,   ///< informational messages too
    Debug,  ///< everything, including debug chatter
};

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Report an internal simulator bug and abort.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user configuration error and exit(1).
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning (suppressed below LogLevel::Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message (suppressed below LogLevel::Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (suppressed below LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Throwing variants used by tests: when set, panic/fatal raise
 * SimError instead of terminating the process.
 */
struct SimError : std::runtime_error
{
    explicit SimError(const std::string &msg)
        : std::runtime_error(msg), message(msg)
    {
    }

    std::string message;
};

/** Enable/disable throwing behaviour for panic()/fatal(). */
void setThrowOnError(bool enable);

} // namespace afa::sim

#endif // AFA_SIM_LOGGING_HH
