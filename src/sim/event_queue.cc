#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace afa::sim {

EventQueue::EventQueue()
    : nextSeq(0), numExecuted(0), numPending(0)
{
    slab.reserve(1024);
    slotKey.reserve(1024);
    heap.reserve(1024);
}

std::uint32_t
EventQueue::growSlab()
{
    if (slab.size() > kSlotMask)
        panic("EventQueue: more than %llu concurrent events",
              (unsigned long long)kSlotMask);
    slab.emplace_back();
    slotKey.push_back(kStaleKey);
    return static_cast<std::uint32_t>(slab.size() - 1);
}

EventHandle
EventQueue::scheduleSlot(Tick when, std::uint32_t prio)
{
    if (nextSeq >= kMaxSeq)
        panicSeqExhausted();
    std::uint32_t slot = allocSlot();
    Record &rec = slab[slot];
    rec.scheduled = true;
    std::uint64_t key = (nextSeq++ << kSlotBits) | slot;
    slotKey[slot] = key;
    heap.push_back(HeapEntry{when, key, prio});
    std::push_heap(heap.begin(), heap.end(), Later{});
    ++numPending;
    return EventHandle{slot, rec.gen};
}

void
EventQueue::panicNullCallback()
{
    panic("EventQueue::schedule: null callback");
}

void
EventQueue::panicSeqExhausted()
{
    panic("EventQueue: event sequence space exhausted");
}

EventQueue::HeapEntry
EventQueue::popTop()
{
    std::pop_heap(heap.begin(), heap.end(), Later{});
    HeapEntry top = heap.back();
    heap.pop_back();
    return top;
}

bool
EventQueue::cancel(EventHandle handle)
{
    if (!handle.valid() || handle.slot >= slab.size())
        return false;
    Record &rec = slab[handle.slot];
    if (!rec.scheduled || rec.gen != handle.gen)
        return false;
    // Lazy deletion: invalidate the slot key so the heap entry is
    // stale; the slot is recycled when the entry surfaces.
    rec.scheduled = false;
    rec.fn = nullptr;
    ++rec.gen;
    slotKey[handle.slot] = kStaleKey;
    freeSlots.push_back(handle.slot);
    --numPending;
    return true;
}

bool
EventQueue::reclaim(EventHandle handle, EventFn &fn_out)
{
    if (!handle.valid() || handle.slot >= slab.size())
        return false;
    Record &rec = slab[handle.slot];
    if (!rec.scheduled || rec.gen != handle.gen)
        return false;
    fn_out = std::move(rec.fn);
    rec.scheduled = false;
    rec.fn = nullptr;
    ++rec.gen;
    slotKey[handle.slot] = kStaleKey;
    freeSlots.push_back(handle.slot);
    --numPending;
    return true;
}

bool
EventQueue::pending(EventHandle handle) const
{
    if (!handle.valid() || handle.slot >= slab.size())
        return false;
    const Record &rec = slab[handle.slot];
    return rec.scheduled && rec.gen == handle.gen;
}

void
EventQueue::skimStale()
{
    while (!heap.empty() && !live(heap.front()))
        popTop();
}

Tick
EventQueue::nextTime()
{
    if (numPending == 0)
        return kMaxTick;
    skimStale();
    return heap.empty() ? kMaxTick : heap.front().when;
}

bool
EventQueue::popNext(Tick &when_out, EventFn &fn_out)
{
    while (!heap.empty()) {
        // Liveness is decided from the slot key before the sift so a
        // live record's cache line can be fetched during the pop.
        bool is_live = live(heap.front());
        if (is_live)
            prefetchRecord(heap.front());
        HeapEntry entry = popTop();
        if (!is_live)
            continue; // stale: cancelled earlier
        takeRecord(entry, when_out, fn_out);
        return true;
    }
    return false;
}

bool
EventQueue::popNextIfBefore(Tick until, Tick &when_out, EventFn &fn_out)
{
    skimStale();
    if (heap.empty() || heap.front().when > until)
        return false;
    prefetchRecord(heap.front());
    HeapEntry entry = popTop();
    takeRecord(entry, when_out, fn_out);
    return true;
}

bool
EventQueue::runNext(Tick &now_out)
{
    EventFn fn;
    if (!popNext(now_out, fn))
        return false;
    fn();
    return true;
}

void
EventQueue::clear()
{
    for (auto &entry : heap) {
        if (!live(entry))
            continue;
        std::uint32_t slot =
            static_cast<std::uint32_t>(entry.key & kSlotMask);
        Record &rec = slab[slot];
        rec.scheduled = false;
        rec.fn = nullptr;
        ++rec.gen;
        slotKey[slot] = kStaleKey;
        freeSlots.push_back(slot);
    }
    heap.clear();
    numPending = 0;
}

} // namespace afa::sim
