#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace afa::sim {

EventQueue::EventQueue()
    : nextSeq(0), numExecuted(0), numPending(0)
{
    slab.reserve(1024);
    heap.reserve(1024);
}

std::uint32_t
EventQueue::allocSlot()
{
    if (!freeSlots.empty()) {
        std::uint32_t slot = freeSlots.back();
        freeSlots.pop_back();
        return slot;
    }
    slab.emplace_back();
    return static_cast<std::uint32_t>(slab.size() - 1);
}

EventHandle
EventQueue::schedule(Tick when, EventFn fn)
{
    if (!fn)
        panic("EventQueue::schedule: null callback");
    std::uint32_t slot = allocSlot();
    Record &rec = slab[slot];
    rec.fn = std::move(fn);
    rec.scheduled = true;
    heap.push_back(HeapEntry{when, nextSeq++, slot, rec.gen});
    std::push_heap(heap.begin(), heap.end(), HeapCompare{});
    ++numPending;
    return EventHandle{slot, rec.gen};
}

bool
EventQueue::cancel(EventHandle handle)
{
    if (!handle.valid() || handle.slot >= slab.size())
        return false;
    Record &rec = slab[handle.slot];
    if (!rec.scheduled || rec.gen != handle.gen)
        return false;
    // Lazy deletion: bump the generation so the heap entry is stale;
    // the slot is recycled when the heap entry surfaces.
    rec.scheduled = false;
    rec.fn = nullptr;
    ++rec.gen;
    freeSlots.push_back(handle.slot);
    --numPending;
    return true;
}

bool
EventQueue::pending(EventHandle handle) const
{
    if (!handle.valid() || handle.slot >= slab.size())
        return false;
    const Record &rec = slab[handle.slot];
    return rec.scheduled && rec.gen == handle.gen;
}

void
EventQueue::skimStale()
{
    while (!heap.empty()) {
        const HeapEntry &top = heap.front();
        const Record &rec = slab[top.slot];
        if (rec.scheduled && rec.gen == top.gen)
            return; // live
        std::pop_heap(heap.begin(), heap.end(), HeapCompare{});
        heap.pop_back();
    }
}

Tick
EventQueue::nextTime()
{
    if (numPending == 0)
        return kMaxTick;
    skimStale();
    return heap.empty() ? kMaxTick : heap.front().when;
}

bool
EventQueue::popNext(Tick &when_out, EventFn &fn_out)
{
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), HeapCompare{});
        HeapEntry entry = heap.back();
        heap.pop_back();
        Record &rec = slab[entry.slot];
        if (!rec.scheduled || rec.gen != entry.gen)
            continue; // stale: cancelled earlier
        fn_out = std::move(rec.fn);
        rec.fn = nullptr;
        rec.scheduled = false;
        ++rec.gen;
        freeSlots.push_back(entry.slot);
        --numPending;
        ++numExecuted;
        when_out = entry.when;
        return true;
    }
    return false;
}

bool
EventQueue::runNext(Tick &now_out)
{
    EventFn fn;
    if (!popNext(now_out, fn))
        return false;
    fn();
    return true;
}

void
EventQueue::clear()
{
    for (auto &entry : heap) {
        Record &rec = slab[entry.slot];
        if (rec.scheduled && rec.gen == entry.gen) {
            rec.scheduled = false;
            rec.fn = nullptr;
            ++rec.gen;
            freeSlots.push_back(entry.slot);
        }
    }
    heap.clear();
    numPending = 0;
}

} // namespace afa::sim
