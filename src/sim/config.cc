#include "sim/config.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace afa::sim {

void
Config::set(const std::string &key, const std::string &value)
{
    values[key] = value;
}

void
Config::set(const std::string &key, const char *value)
{
    values[key] = value;
}

void
Config::set(const std::string &key, bool value)
{
    values[key] = value ? "true" : "false";
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    values[key] = std::to_string(value);
}

void
Config::set(const std::string &key, int value)
{
    values[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    values[key] = os.str();
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) != 0;
}

bool
Config::erase(const std::string &key)
{
    return values.erase(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
}

namespace {

bool
parseBool(const std::string &raw, const std::string &key, bool &out)
{
    std::string v = raw;
    std::transform(v.begin(), v.end(), v.begin(), ::tolower);
    if (v == "true" || v == "1" || v == "yes" || v == "on") {
        out = true;
        return true;
    }
    if (v == "false" || v == "0" || v == "no" || v == "off") {
        out = false;
        return true;
    }
    fatal("config key '%s': '%s' is not a boolean",
          key.c_str(), raw.c_str());
}

bool
parseInt(const std::string &raw, std::int64_t &out)
{
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(raw.c_str(), &end, 0);
    if (errno != 0 || end == raw.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseDouble(const std::string &raw, double &out)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(raw.c_str(), &end);
    if (errno != 0 || end == raw.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    bool out = dflt;
    parseBool(it->second, key, out);
    return out;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    std::int64_t out;
    if (!parseInt(it->second, out))
        fatal("config key '%s': '%s' is not an integer",
              key.c_str(), it->second.c_str());
    return out;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t dflt) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    std::int64_t out;
    if (!parseInt(it->second, out) || out < 0)
        fatal("config key '%s': '%s' is not a non-negative integer",
              key.c_str(), it->second.c_str());
    return static_cast<std::uint64_t>(out);
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    double out;
    if (!parseDouble(it->second, out))
        fatal("config key '%s': '%s' is not a number",
              key.c_str(), it->second.c_str());
    return out;
}

std::string
Config::requireString(const std::string &key) const
{
    auto it = values.find(key);
    if (it == values.end())
        fatal("missing required config key '%s'", key.c_str());
    return it->second;
}

std::int64_t
Config::requireInt(const std::string &key) const
{
    std::int64_t out;
    std::string raw = requireString(key);
    if (!parseInt(raw, out))
        fatal("config key '%s': '%s' is not an integer",
              key.c_str(), raw.c_str());
    return out;
}

double
Config::requireDouble(const std::string &key) const
{
    double out;
    std::string raw = requireString(key);
    if (!parseDouble(raw, out))
        fatal("config key '%s': '%s' is not a number",
              key.c_str(), raw.c_str());
    return out;
}

std::vector<std::string>
Config::parseArgs(int argc, const char *const *argv)
{
    std::vector<std::string> positional;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string key, value;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            key = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            key = body;
            // "--key value" when the next token is not an option;
            // otherwise a bare flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        std::replace(key.begin(), key.end(), '-', '_');
        if (key.empty())
            fatal("malformed option '%s'", arg.c_str());
        values[key] = value;
    }
    return positional;
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.values)
        values[k] = v;
}

std::vector<std::string>
Config::keysWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (auto it = values.lower_bound(prefix); it != values.end(); ++it) {
        if (it->first.rfind(prefix, 0) != 0)
            break;
        out.push_back(it->first);
    }
    return out;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : values)
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace afa::sim
