#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace afa::sim {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashTag(std::string_view tag)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : tag) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    // Finalize with one splitmix round to spread low-entropy tags.
    return splitmix64(h);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : _seed(seed), cachedNormal(0.0), hasCachedNormal(false)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

Rng
Rng::fork(std::string_view tag) const
{
    return Rng(_seed ^ hashTag(tag));
}

Rng
Rng::fork(std::uint64_t tag) const
{
    std::uint64_t t = tag + 0x1234567890abcdefULL;
    return Rng(_seed ^ splitmix64(t));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[0] + s[3], 23) + s[0];
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo %llu > hi %llu",
              (unsigned long long)lo, (unsigned long long)hi);
    std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % span);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit && limit != 0);
    return lo + (v % span);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    // Box-Muller transform.
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double median, double sigma)
{
    if (median <= 0.0)
        panic("lognormal: median must be positive, got %f", median);
    return median * std::exp(sigma * normal());
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic("exponential: mean must be positive, got %f", mean);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::pareto(double xm, double alpha)
{
    if (xm <= 0.0 || alpha <= 0.0)
        panic("pareto: xm and alpha must be positive (%f, %f)", xm, alpha);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
}

} // namespace afa::sim
