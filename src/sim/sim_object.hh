/**
 * @file
 * Base class for named simulation components.
 */

#ifndef AFA_SIM_SIM_OBJECT_HH
#define AFA_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace afa::sim {

/**
 * A named component bound to a Simulator.
 *
 * Provides schedule helpers and a per-object random stream forked from
 * the simulator's root stream using the object name, so adding or
 * removing unrelated components does not perturb an object's draws.
 */
class SimObject
{
  public:
    SimObject(Simulator &simulator, std::string object_name)
        : simRef(simulator),
          objName(std::move(object_name)),
          objRng(simulator.rng().fork(objName))
    {
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** The owning simulator. */
    Simulator &sim() { return simRef; }
    const Simulator &sim() const { return simRef; }

    /** Hierarchical object name (e.g. "afa.ssd3.smart"). */
    const std::string &name() const { return objName; }

    /** Current simulated time. */
    Tick now() const { return simRef.now(); }

    /** Schedule a callback @p delay from now. */
    template <typename F>
    EventHandle
    after(Tick delay, F &&fn)
    {
        return simRef.scheduleAfter(delay, std::forward<F>(fn));
    }

    /** Schedule a callback at absolute time @p when. */
    template <typename F>
    EventHandle
    at(Tick when, F &&fn)
    {
        return simRef.scheduleAt(when, std::forward<F>(fn));
    }

    /** Per-object deterministic random stream. */
    Rng &rng() { return objRng; }

  private:
    Simulator &simRef;
    std::string objName;
    Rng objRng;
};

} // namespace afa::sim

#endif // AFA_SIM_SIM_OBJECT_HH
