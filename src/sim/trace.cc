#include "sim/trace.hh"

namespace afa::sim {

void
Tracer::enable(const std::string &category)
{
    enabledCategories.insert(category);
}

void
Tracer::disable(const std::string &category)
{
    enabledCategories.erase(category);
}

bool
Tracer::matches(const std::string &pattern, const std::string &category)
{
    if (pattern == category)
        return true;
    // Prefix match at a dot boundary: "irq" matches "irq.balance".
    if (category.size() > pattern.size() &&
        category.compare(0, pattern.size(), pattern) == 0 &&
        category[pattern.size()] == '.')
        return true;
    return false;
}

bool
Tracer::enabled(const std::string &category) const
{
    if (allEnabled)
        return true;
    for (const auto &pattern : enabledCategories) {
        if (matches(pattern, category))
            return true;
    }
    return false;
}

void
Tracer::record(Tick when, const std::string &category,
               std::string message)
{
    if (!enabled(category))
        return;
    if (echoFile) {
        std::fprintf(echoFile, "[%12.3f us] %-16s %s\n",
                     toUsec(when), category.c_str(), message.c_str());
    }
    if (recordsBuf.size() >= maxRecords) {
        recordsBuf.pop_front();
        ++numDropped;
    }
    recordsBuf.push_back(TraceRecord{when, category, std::move(message)});
}

std::vector<TraceRecord>
Tracer::filtered(const std::string &category) const
{
    std::vector<TraceRecord> out;
    for (const auto &rec : recordsBuf) {
        if (matches(category, rec.category))
            out.push_back(rec);
    }
    return out;
}

void
Tracer::clear()
{
    recordsBuf.clear();
    numDropped = 0;
}

} // namespace afa::sim
