#include "sim/trace.hh"

namespace afa::sim {

void
Tracer::enable(std::string_view category)
{
    enabledCategories.emplace(category);
}

void
Tracer::disable(std::string_view category)
{
    auto it = enabledCategories.find(category);
    if (it != enabledCategories.end())
        enabledCategories.erase(it);
}

bool
Tracer::matches(std::string_view pattern, std::string_view category)
{
    if (pattern == category)
        return true;
    // Prefix match at a dot boundary: "irq" matches "irq.balance"
    // but not "irqx".
    if (category.size() > pattern.size() &&
        category.substr(0, pattern.size()) == pattern &&
        category[pattern.size()] == '.')
        return true;
    return false;
}

bool
Tracer::enabled(std::string_view category) const
{
    if (allEnabled)
        return true;
    for (const auto &pattern : enabledCategories) {
        if (matches(pattern, category))
            return true;
    }
    return false;
}

void
Tracer::record(Tick when, std::string_view category,
               std::string_view message)
{
    if (!enabled(category))
        return;
    if (echoFile) {
        std::fprintf(echoFile, "[%12.3f us] %-16.*s %.*s\n",
                     toUsec(when), (int)category.size(),
                     category.data(), (int)message.size(),
                     message.data());
    }
    if (recordsBuf.size() >= maxRecords) {
        recordsBuf.pop_front();
        ++numDropped;
    }
    recordsBuf.push_back(TraceRecord{when, std::string(category),
                                     std::string(message)});
}

std::vector<TraceRecord>
Tracer::filtered(std::string_view category) const
{
    std::vector<TraceRecord> out;
    for (const auto &rec : recordsBuf) {
        if (matches(category, rec.category))
            out.push_back(rec);
    }
    return out;
}

void
Tracer::clear()
{
    recordsBuf.clear();
    numDropped = 0;
}

} // namespace afa::sim
