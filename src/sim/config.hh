/**
 * @file
 * A small typed key-value configuration store.
 *
 * Keys are dotted paths ("ssd.nand.read_us"). Values are stored as
 * strings and converted on access; accessors with defaults never fail,
 * required accessors call fatal() on missing keys or bad conversions
 * (a user error, per gem5 convention).
 *
 * The store also powers command-line parsing for benches and examples:
 * "--key=value" and "--key value" forms set entries; "--flag" sets the
 * entry to "true".
 */

#ifndef AFA_SIM_CONFIG_HH
#define AFA_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace afa::sim {

/** Typed view over a string-valued configuration tree. */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, bool value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, int value);
    void set(const std::string &key, double value);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** Remove a key; returns true if it existed. */
    bool erase(const std::string &key);

    /** Get with default. */
    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    bool getBool(const std::string &key, bool dflt) const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;

    /** Get a required key; calls fatal() when missing or malformed. */
    std::string requireString(const std::string &key) const;
    std::int64_t requireInt(const std::string &key) const;
    double requireDouble(const std::string &key) const;

    /**
     * Parse argv-style options into this config.
     *
     * Recognises "--key=value", "--key value", and bare "--flag"
     * (stored as "true"). Positional arguments are returned.
     * Dashes in key names are normalised to underscores.
     */
    std::vector<std::string> parseArgs(int argc, const char *const *argv);

    /**
     * Merge another config into this one; @p other wins on conflicts.
     */
    void merge(const Config &other);

    /** All keys with the given dotted prefix ("ssd." -> ssd.*). */
    std::vector<std::string> keysWithPrefix(const std::string &prefix)
        const;

    /** Number of entries. */
    std::size_t size() const { return values.size(); }

    /** Render as sorted "key = value" lines (for logs and reports). */
    std::string toString() const;

  private:
    std::map<std::string, std::string> values;
};

} // namespace afa::sim

#endif // AFA_SIM_CONFIG_HH
