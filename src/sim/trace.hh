/**
 * @file
 * Event tracing, the simulator's analogue of the paper's LTTng usage.
 *
 * Components emit trace records into named categories ("sched",
 * "irq", "nvme.smart", ...). A Tracer collects records when the
 * category is enabled; tests and the ssd_profiler example use it to
 * attribute latency to scheduler and IRQ activity, exactly the way the
 * paper used LTTng to find misplaced IRQ handlers.
 */

#ifndef AFA_SIM_TRACE_HH
#define AFA_SIM_TRACE_HH

#include <cstdio>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace afa::sim {

/** One trace record. */
struct TraceRecord
{
    Tick when;
    std::string category;
    std::string message;
};

/**
 * Collects trace records for enabled categories.
 *
 * Category matching is by exact name or dotted-prefix: enabling "irq"
 * also captures "irq.balance". Records are kept in a bounded deque;
 * the oldest records are dropped past the capacity.
 */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = 1 << 20)
        : maxRecords(capacity), echoFile(nullptr), numDropped(0)
    {
    }

    /** Enable a category (and its dotted children). */
    void enable(const std::string &category);

    /** Disable a previously enabled category. */
    void disable(const std::string &category);

    /** Enable every category. */
    void enableAll() { allEnabled = true; }

    /** True when records for @p category would be kept. */
    bool enabled(const std::string &category) const;

    /** Emit a record (no-op when the category is disabled). */
    void record(Tick when, const std::string &category,
                std::string message);

    /** Also echo records to a FILE* as they arrive (nullptr to stop). */
    void echoTo(std::FILE *file) { echoFile = file; }

    /** All retained records, oldest first. */
    const std::deque<TraceRecord> &records() const { return recordsBuf; }

    /** Records in @p category (prefix-matched), oldest first. */
    std::vector<TraceRecord> filtered(const std::string &category) const;

    /** Count of records dropped due to the capacity bound. */
    std::uint64_t dropped() const { return numDropped; }

    /** Discard all retained records. */
    void clear();

  private:
    static bool matches(const std::string &pattern,
                        const std::string &category);

    std::set<std::string> enabledCategories;
    bool allEnabled = false;
    std::deque<TraceRecord> recordsBuf;
    std::size_t maxRecords;
    std::FILE *echoFile;
    std::uint64_t numDropped;
};

} // namespace afa::sim

#endif // AFA_SIM_TRACE_HH
