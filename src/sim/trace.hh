/**
 * @file
 * Event tracing, the simulator's analogue of the paper's LTTng usage.
 *
 * Components emit trace records into named categories ("sched",
 * "irq", "nvme.smart", ...). A Tracer collects records when the
 * category is enabled; tests and the ssd_profiler example use it to
 * attribute latency to scheduler and IRQ activity, exactly the way the
 * paper used LTTng to find misplaced IRQ handlers.
 *
 * This is the *diagnostic* tracer: records carry free-form message
 * strings, so call sites must gate message formatting on enabled()
 * (or anyEnabled()) to avoid paying for strings nobody keeps. The
 * per-IO hot path uses obs::SpanLog instead, whose records are packed
 * PODs and whose disabled path is a single mask test.
 */

#ifndef AFA_SIM_TRACE_HH
#define AFA_SIM_TRACE_HH

#include <cstdio>
#include <deque>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace afa::sim {

/** One trace record. */
struct TraceRecord
{
    Tick when;
    std::string category;
    std::string message;
};

/**
 * Collects trace records for enabled categories.
 *
 * Category matching is by exact name or dotted-prefix: enabling "irq"
 * also captures "irq.balance" but not "irqx". Records are kept in a
 * bounded deque; the oldest records are dropped past the capacity.
 */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = 1 << 20)
        : maxRecords(capacity), echoFile(nullptr), numDropped(0)
    {
    }

    /** Enable a category (and its dotted children). */
    void enable(std::string_view category);

    /** Disable a previously enabled category. */
    void disable(std::string_view category);

    /** Enable every category. */
    void enableAll() { allEnabled = true; }

    /** True when records for @p category would be kept. */
    bool enabled(std::string_view category) const;

    /** True when any category at all is enabled (cheap pre-gate). */
    bool anyEnabled() const
    {
        return allEnabled || !enabledCategories.empty();
    }

    /**
     * Emit a record (no-op when the category is disabled). Accepts
     * string_views so disabled-category calls never build a
     * std::string, but note the *message* argument is usually the
     * product of strfmt(): gate that on enabled() at the call site.
     */
    void record(Tick when, std::string_view category,
                std::string_view message);

    /** Also echo records to a FILE* as they arrive (nullptr to stop). */
    void echoTo(std::FILE *file) { echoFile = file; }

    /** All retained records, oldest first. */
    const std::deque<TraceRecord> &records() const { return recordsBuf; }

    /** Records in @p category (prefix-matched), oldest first. */
    std::vector<TraceRecord> filtered(std::string_view category) const;

    /** Count of records dropped due to the capacity bound. */
    std::uint64_t dropped() const { return numDropped; }

    /** Discard all retained records. */
    void clear();

  private:
    static bool matches(std::string_view pattern,
                        std::string_view category);

    /** std::less<> enables heterogeneous string_view lookups. */
    std::set<std::string, std::less<>> enabledCategories;
    bool allEnabled = false;
    std::deque<TraceRecord> recordsBuf;
    std::size_t maxRecords;
    std::FILE *echoFile;
    std::uint64_t numDropped;
};

} // namespace afa::sim

#endif // AFA_SIM_TRACE_HH
