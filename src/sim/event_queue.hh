/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are closures scheduled at an absolute tick. Every event
 * carries an ordering band (@c prio): same-tick events execute in
 * ascending band order, FIFO-stable within a band. Band 0 is the
 * default -- plain scheduling order, the classic serial-DES rule.
 * Non-zero bands exist for "post-class" events whose same-tick order
 * must be a deterministic function of the model alone (not of which
 * execution path happened to insert them first); the sharded
 * simulator relies on them to keep replay bit-identical at any shard
 * count (see Simulator::scheduleOnShard()). Scheduling returns an
 * EventHandle that can be used to cancel the event before it fires;
 * handles are generation-checked so a stale handle can never cancel a
 * recycled slot.
 */

#ifndef AFA_SIM_EVENT_QUEUE_HH
#define AFA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/types.hh"

namespace afa::sim {

/**
 * Opaque reference to a scheduled event.
 *
 * A default-constructed handle is "null" and valid to cancel (a no-op).
 */
struct EventHandle
{
    std::uint32_t slot = kNullSlot;
    std::uint32_t gen = 0;

    static constexpr std::uint32_t kNullSlot = 0xffffffffu;

    /** True when this handle refers to some (possibly past) event. */
    bool valid() const { return slot != kNullSlot; }

    bool operator==(const EventHandle &other) const = default;
};

/**
 * Min-heap of timed events with FIFO tie-breaking and O(1) handle
 * cancellation.
 */
class EventQueue
{
  public:
    EventQueue();

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * Accepts any `void()` callable; the closure is constructed
     * directly into its queue slot (no intermediate EventFn moves).
     * @param prio same-tick ordering band; 0 (the default) means
     *        plain FIFO scheduling order, higher bands run after
     *        every lower band of the same tick, FIFO within a band.
     * @return handle usable with cancel().
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&fn, std::uint32_t prio = 0)
    {
        if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
            if (!fn)
                panicNullCallback();
        }
        // The slot/heap bookkeeping is shared out-of-line code; only
        // the closure construction is stamped out per callable, so the
        // callback lands in its slot without any intermediate moves.
        EventHandle handle = scheduleSlot(when, prio);
        slab[handle.slot].fn.assign(std::forward<F>(fn));
        return handle;
    }

    /**
     * Cancel a previously scheduled event.
     * @retval true the event was pending and is now cancelled.
     * @retval false the event already fired, was already cancelled,
     *         or the handle is null.
     */
    bool cancel(EventHandle handle);

    /**
     * Cancel a pending event and take back its callback (for
     * re-routing, e.g. a displaced fast-path delivery).
     * @retval true the event was pending; @p fn_out holds its
     *         callback and the event will not fire.
     * @retval false the handle was stale; @p fn_out untouched.
     */
    bool reclaim(EventHandle handle, EventFn &fn_out);

    /** True if the given handle still refers to a pending event. */
    bool pending(EventHandle handle) const;

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return numPending; }

    /** True when no events are pending. */
    bool empty() const { return numPending == 0; }

    /**
     * Time of the earliest pending event; kMaxTick when empty.
     * Discards stale (cancelled) heap entries as a side effect, so the
     * call is amortised O(log n).
     */
    Tick nextTime();

    /**
     * Pop and run the earliest pending event.
     * @param now_out receives the event's scheduled time.
     * @retval false when the queue was empty.
     */
    bool runNext(Tick &now_out);

    /**
     * Pop the earliest pending event without executing it. The caller
     * (the Simulator) advances its clock to @p when_out and then
     * invokes @p fn_out, so callbacks observe the correct time.
     * @retval false when the queue was empty.
     */
    bool popNext(Tick &when_out, EventFn &fn_out);

    /**
     * Pop the earliest pending event only if it is due at or before
     * @p until. Combines nextTime() + popNext() into one heap pass --
     * the Simulator::run() hot path.
     * @retval false when the queue is empty or the earliest event is
     *         after @p until (distinguish via empty()).
     */
    bool popNextIfBefore(Tick until, Tick &when_out, EventFn &fn_out);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

    /** Drop every pending event. */
    void clear();

  private:
    struct Record
    {
        EventFn fn;
        std::uint32_t gen = 0;
        bool scheduled = false;
    };

    /** Slot index width inside a heap key (16M concurrent slots). */
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
    /** Sequence numbers above this would overflow the packed key. */
    static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);
    /** slotKey value marking a slot with no live heap entry. */
    static constexpr std::uint64_t kStaleKey = ~0ull;

    /**
     * Compact heap entry: the key packs (seq << 24 | slot), so
     * comparing keys compares seq (FIFO order; slots never tie
     * because seq is unique); prio is the same-tick ordering band.
     * Liveness is checked against the dense slotKey array instead of
     * the fat Record, keeping skims and pops inside two small arrays.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t key;
        std::uint32_t prio;
    };

    /** Min-order on (when, prio, seq); seq gives in-band FIFO. */
    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.prio != b.prio)
            return a.prio < b.prio;
        return a.key < b.key;
    }

    /** Comparator for the std heap algorithms (max-heap inversion). */
    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            return earlier(b, a);
        }
    };

    std::vector<Record> slab;
    std::vector<std::uint64_t> slotKey; ///< parallel to slab
    std::vector<std::uint32_t> freeSlots;
    std::vector<HeapEntry> heap;
    std::uint64_t nextSeq;
    std::uint64_t numExecuted;
    std::size_t numPending;

    /**
     * Allocate a slot, mark it scheduled, and push its heap entry;
     * the caller constructs the callback into the returned slot.
     */
    EventHandle scheduleSlot(Tick when, std::uint32_t prio);

    std::uint32_t
    allocSlot()
    {
        if (!freeSlots.empty()) {
            std::uint32_t slot = freeSlots.back();
            freeSlots.pop_back();
            return slot;
        }
        return growSlab();
    }

    /** Slow path of allocSlot: extend the record slab. */
    std::uint32_t growSlab();

    [[noreturn]] static void panicNullCallback();
    [[noreturn]] static void panicSeqExhausted();

    bool
    live(const HeapEntry &entry) const
    {
        return slotKey[entry.key & kSlotMask] == entry.key;
    }

    /** Remove and return the heap top (heap must be non-empty). */
    HeapEntry popTop();

    /**
     * Start pulling a live top entry's record into cache before the
     * heap sift runs; for deep heaps the slab access is a likely miss
     * that this hides behind the pop.
     */
    void
    prefetchRecord(const HeapEntry &entry) const
    {
#if defined(__GNUC__) || defined(__clang__)
        std::uint32_t slot =
            static_cast<std::uint32_t>(entry.key & kSlotMask);
        __builtin_prefetch(&slab[slot], 1);
#else
        (void)entry;
#endif
    }

    /** Pop cancelled entries off the heap top. */
    void skimStale();

    /** Extract a live record's callback after its entry is popped. */
    void
    takeRecord(const HeapEntry &entry, Tick &when_out, EventFn &fn_out)
    {
        std::uint32_t slot =
            static_cast<std::uint32_t>(entry.key & kSlotMask);
        Record &rec = slab[slot];
        fn_out = std::move(rec.fn);
        rec.fn = nullptr;
        rec.scheduled = false;
        ++rec.gen;
        slotKey[slot] = kStaleKey;
        freeSlots.push_back(slot);
        --numPending;
        ++numExecuted;
        when_out = entry.when;
    }
};

} // namespace afa::sim

#endif // AFA_SIM_EVENT_QUEUE_HH
