/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are closures scheduled at an absolute tick. Events scheduled
 * for the same tick execute in scheduling order (FIFO-stable), which
 * keeps simulations deterministic. Scheduling returns an EventHandle
 * that can be used to cancel the event before it fires; handles are
 * generation-checked so a stale handle can never cancel a recycled
 * slot.
 */

#ifndef AFA_SIM_EVENT_QUEUE_HH
#define AFA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace afa::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Opaque reference to a scheduled event.
 *
 * A default-constructed handle is "null" and valid to cancel (a no-op).
 */
struct EventHandle
{
    std::uint32_t slot = kNullSlot;
    std::uint32_t gen = 0;

    static constexpr std::uint32_t kNullSlot = 0xffffffffu;

    /** True when this handle refers to some (possibly past) event. */
    bool valid() const { return slot != kNullSlot; }

    bool operator==(const EventHandle &other) const = default;
};

/**
 * Min-heap of timed events with FIFO tie-breaking and O(1) handle
 * cancellation.
 */
class EventQueue
{
  public:
    EventQueue();

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @return handle usable with cancel().
     */
    EventHandle schedule(Tick when, EventFn fn);

    /**
     * Cancel a previously scheduled event.
     * @retval true the event was pending and is now cancelled.
     * @retval false the event already fired, was already cancelled,
     *         or the handle is null.
     */
    bool cancel(EventHandle handle);

    /** True if the given handle still refers to a pending event. */
    bool pending(EventHandle handle) const;

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return numPending; }

    /** True when no events are pending. */
    bool empty() const { return numPending == 0; }

    /**
     * Time of the earliest pending event; kMaxTick when empty.
     * Discards stale (cancelled) heap entries as a side effect, so the
     * call is amortised O(log n).
     */
    Tick nextTime();

    /**
     * Pop and run the earliest pending event.
     * @param now_out receives the event's scheduled time.
     * @retval false when the queue was empty.
     */
    bool runNext(Tick &now_out);

    /**
     * Pop the earliest pending event without executing it. The caller
     * (the Simulator) advances its clock to @p when_out and then
     * invokes @p fn_out, so callbacks observe the correct time.
     * @retval false when the queue was empty.
     */
    bool popNext(Tick &when_out, EventFn &fn_out);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

    /** Drop every pending event. */
    void clear();

  private:
    struct Record
    {
        EventFn fn;
        std::uint32_t gen = 0;
        bool scheduled = false;
    };

    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    struct HeapCompare
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            // std::push_heap builds a max-heap; invert for min-heap
            // ordered by (when, seq).
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Record> slab;
    std::vector<std::uint32_t> freeSlots;
    std::vector<HeapEntry> heap;
    std::uint64_t nextSeq;
    std::uint64_t numExecuted;
    std::size_t numPending;

    std::uint32_t allocSlot();

    /** Pop cancelled entries off the heap top. */
    void skimStale();
};

} // namespace afa::sim

#endif // AFA_SIM_EVENT_QUEUE_HH
