#include "sim/simulator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace afa::sim {

Simulator::Simulator(std::uint64_t seed)
    : currentTick(0), stopRequested(false), rootRng(seed)
{
}

EventHandle
Simulator::scheduleAt(Tick when, EventFn fn)
{
    if (when < currentTick)
        panic("scheduleAt: time %llu is in the past (now %llu)",
              (unsigned long long)when, (unsigned long long)currentTick);
    return events.schedule(when, std::move(fn));
}

EventHandle
Simulator::scheduleAfter(Tick delay, EventFn fn)
{
    if (delay > kMaxTick - currentTick)
        panic("scheduleAfter: delay overflows the clock");
    return events.schedule(currentTick + delay, std::move(fn));
}

std::uint64_t
Simulator::run(Tick until)
{
    std::uint64_t executed = 0;
    stopRequested = false;
    while (!stopRequested) {
        Tick next = events.nextTime();
        if (next == kMaxTick)
            break; // drained
        if (next > until) {
            // Never move the clock backwards when the bound is in
            // the past.
            currentTick = std::max(currentTick, until);
            break;
        }
        Tick when = 0;
        EventFn fn;
        if (!events.popNext(when, fn))
            break;
        currentTick = when;
        fn();
        ++executed;
    }
    return executed;
}

std::uint64_t
Simulator::runSteps(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    stopRequested = false;
    while (executed < max_events && !stopRequested) {
        Tick when = 0;
        EventFn fn;
        if (!events.popNext(when, fn))
            break;
        currentTick = when;
        fn();
        ++executed;
    }
    return executed;
}

} // namespace afa::sim
