#include "sim/simulator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace afa::sim {

Simulator::Simulator(std::uint64_t seed)
    : currentTick(0), stopRequested(false), rootRng(seed)
{
}

void
Simulator::panicPastEvent(Tick when) const
{
    panic("scheduleAt: time %llu is in the past (now %llu)",
          (unsigned long long)when, (unsigned long long)currentTick);
}

void
Simulator::panicDelayOverflow()
{
    panic("scheduleAfter: delay overflows the clock");
}

std::uint64_t
Simulator::run(Tick until)
{
    std::uint64_t executed = 0;
    stopRequested = false;
    while (!stopRequested) {
        Tick when = 0;
        EventFn fn;
        if (!events.popNextIfBefore(until, when, fn)) {
            if (events.empty())
                break; // drained
            // Next event is beyond the bound; never move the clock
            // backwards when the bound is in the past.
            currentTick = std::max(currentTick, until);
            break;
        }
        currentTick = when;
        fn();
        ++executed;
    }
    return executed;
}

std::uint64_t
Simulator::runSteps(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    stopRequested = false;
    while (executed < max_events && !stopRequested) {
        Tick when = 0;
        EventFn fn;
        if (!events.popNext(when, fn))
            break;
        currentTick = when;
        fn();
        ++executed;
    }
    return executed;
}

} // namespace afa::sim
