#include "sim/simulator.hh"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>

#include "sim/logging.hh"

namespace afa::sim {

// Definition of the per-thread shard cursor declared in shard.hh.
// Per-thread by construction, never shared across threads.
thread_local unsigned t_currentShard = 0; // detlint:allow(mutable-static)

Simulator::Simulator(std::uint64_t seed, unsigned shard_count)
    : stopRequested(false), rootRng(seed)
{
    if (shard_count == 0)
        shard_count = 1;
    if (shard_count > kMaxShards)
        panic("Simulator: %u shards exceeds the cap of %u", shard_count,
              kMaxShards);
    shardStates.reserve(shard_count);
    for (unsigned s = 0; s < shard_count; ++s)
        shardStates.push_back(std::make_unique<Shard>());
}

void
Simulator::panicPastEvent(Tick when, Tick now_tick)
{
    panic("scheduleAt: time %llu is in the past (now %llu)",
          (unsigned long long)when, (unsigned long long)now_tick);
}

void
Simulator::panicDelayOverflow()
{
    panic("scheduleAfter: delay overflows the clock");
}

void
Simulator::checkShardId(unsigned shard) const
{
    if (shard >= shardStates.size())
        panic("shard %u out of range (have %zu)", shard,
              shardStates.size());
}

EventHandle
Simulator::scheduleOnShard(unsigned shard, Tick when, EventFn fn,
                           bool internal, std::uint32_t order)
{
    checkShardId(shard);
    const unsigned cur = t_currentShard;
    Shard &src = *shardStates[cur];
    if (shard != cur)
        ++src.crossPosts;
    if (!parallelPhase || shard == cur) {
        // Direct path: setup code, serial runs, or a same-shard post.
        // The handle is a plain queue handle of the *target* shard;
        // cancel it only from there.
        if (when < src.clock)
            panicPastEvent(when, src.clock);
        Shard &dst = *shardStates[shard];
        if (!internal)
            return dst.q.schedule(when, std::move(fn), order);
        Shard *dp = &dst;
        // Plumbing is counted before the callback on purpose: the
        // queue's executed counter increments at pop time, so an
        // internal event observing shardStats() mid-callback (a
        // telemetry sample) sees executed - plumbing with itself in
        // both counters — i.e. exactly the model events so far.
        return dst.q.schedule(when, [dp, f = std::move(fn)]() mutable {
            ++dp->plumbing;
            f();
        }, order);
    }

    // Mailbox path: the post must clear the conservative horizon so
    // it lands in a strictly later window on the destination shard.
    if (when < src.clock || when - src.clock < lookaheadTicks)
        panic("scheduleOnShard: cross post at %llu violates the "
              "lookahead horizon (now %llu, lookahead %llu)",
              (unsigned long long)when, (unsigned long long)src.clock,
              (unsigned long long)lookaheadTicks);
    std::uint32_t idx;
    if (!src.freeSlab.empty()) {
        idx = src.freeSlab.back();
        src.freeSlab.pop_back();
    } else {
        if (src.slab.size() > kCrossIdxMask)
            panic("scheduleOnShard: cross-event slab exhausted");
        idx = static_cast<std::uint32_t>(src.slab.size());
        src.slab.push_back(std::make_unique<CrossMsg>());
    }
    CrossMsg &m = *src.slab[idx];
    m.fn = std::move(fn);
    m.when = when;
    m.queued = EventHandle{};
    m.order = order;
    m.dst = static_cast<std::uint16_t>(shard);
    m.state = kMsgOutbox;
    m.internal = internal;
    src.outbox.push_back(idx);
    return EventHandle{kCrossBit | (cur << kCrossSrcShift) | idx, m.gen};
}

bool
Simulator::cancel(EventHandle handle)
{
    if (!handle.valid())
        return false;
    if (handle.slot & kCrossBit)
        return cancelCross(handle, nullptr);
    return localShard().q.cancel(handle);
}

bool
Simulator::pending(EventHandle handle) const
{
    if (!handle.valid())
        return false;
    if (handle.slot & kCrossBit) {
        const unsigned src =
            (handle.slot & ~kCrossBit) >> kCrossSrcShift;
        const std::uint32_t idx = handle.slot & kCrossIdxMask;
        if (src >= shardStates.size() ||
            idx >= shardStates[src]->slab.size())
            return false;
        const CrossMsg &m = *shardStates[src]->slab[idx];
        return m.gen == handle.gen &&
               (m.state == kMsgOutbox || m.state == kMsgQueued);
    }
    return localShard().q.pending(handle);
}

bool
Simulator::cancelCross(EventHandle handle, EventFn *reclaimed)
{
    const unsigned src = (handle.slot & ~kCrossBit) >> kCrossSrcShift;
    const std::uint32_t idx = handle.slot & kCrossIdxMask;
    if (src >= shardStates.size() ||
        idx >= shardStates[src]->slab.size())
        return false;
    Shard &sh = *shardStates[src];
    CrossMsg &m = *sh.slab[idx];
    if (m.gen != handle.gen ||
        (m.state != kMsgOutbox && m.state != kMsgQueued))
        return false;
    if (parallelPhase) {
        // Only the posting shard may cancel, and only while the
        // delivery is at least one lookahead window away: that keeps
        // cancel strictly barrier-ordered before fire.
        if (t_currentShard != src)
            panic("cancel of a cross event from shard %u (posted by "
                  "shard %u)", t_currentShard, src);
        const Tick local_now = sh.clock;
        if (m.when < local_now || m.when - local_now < lookaheadTicks)
            panic("cross-event cancel at %llu inside the delivery "
                  "window of %llu (lookahead %llu)",
                  (unsigned long long)local_now,
                  (unsigned long long)m.when,
                  (unsigned long long)lookaheadTicks);
    }
    if (reclaimed)
        *reclaimed = std::move(m.fn);
    if (m.state == kMsgOutbox) {
        // Not yet drained: the leader recycles it when it sweeps the
        // outbox (or immediately when we are not running).
        m.state = kMsgCancelled;
        if (!parallelPhase)
            drainMailboxes();
    } else {
        m.state = kMsgCancelled;
        if (parallelPhase) {
            sh.cancelReq.push_back(idx);
        } else {
            shardStates[m.dst]->q.cancel(m.queued);
            recycleMsg(sh, idx);
        }
    }
    return true;
}

EventFn
Simulator::reclaim(EventHandle handle)
{
    if (!handle.valid())
        panic("reclaim: null handle");
    EventFn fn;
    if (handle.slot & kCrossBit) {
        if (!cancelCross(handle, &fn))
            panic("reclaim: cross event already fired or cancelled");
        return fn;
    }
    if (!localShard().q.reclaim(handle, fn))
        panic("reclaim: event already fired or cancelled");
    return fn;
}

void
Simulator::recycleMsg(Shard &src, std::uint32_t idx)
{
    CrossMsg &m = *src.slab[idx];
    m.fn = nullptr;
    m.state = kMsgFree;
    ++m.gen; // invalidate outstanding handles
    src.freeSlab.push_back(idx);
}

void
Simulator::fireCross(CrossMsg *msg, unsigned src, std::uint32_t idx)
{
    // Runs on the destination shard. Cancelled entries are removed
    // from this queue at a preceding barrier, so a firing entry is
    // always live. The slot itself is recycled by the leader at the
    // next barrier, via this shard's retired list.
    Shard &here = *shardStates[t_currentShard];
    // Before the callback, matching the queue's pop-time executed
    // counter (see the same-shard internal wrapper in
    // scheduleOnShard): a sample reading shardStats() mid-callback
    // sees itself in both counters.
    if (msg->internal)
        ++here.plumbing;
    EventFn fn = std::move(msg->fn);
    msg->state = kMsgFired;
    here.retired.emplace_back(static_cast<std::uint16_t>(src), idx);
    fn();
}

std::uint64_t
Simulator::modelExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shardStates)
        n += sp->q.executed() - sp->plumbing;
    return n;
}

std::uint64_t
Simulator::executedEvents() const
{
    return modelExecuted();
}

void
Simulator::collectProfile(SimProfile &out) const
{
    out.shards.resize(shardStates.size());
    for (std::size_t s = 0; s < shardStates.size(); ++s) {
        const Shard &sh = *shardStates[s];
        ShardStat &st = out.shards[s];
        st.executedEvents = sh.q.executed() - sh.plumbing;
        st.plumbingEvents = sh.plumbing;
        st.crossPosts = sh.crossPosts;
        st.barrierWaitNanos = sh.barrierWaitNanos;
    }
    out.windows = windowCount;
    out.mailboxDrained = mailboxDrainedCount;
}

SimProfile
Simulator::shardStats() const
{
    // During a parallel run the live per-shard counters belong to
    // their worker threads; hand out the barrier-synchronised
    // snapshot the leader refreshed in planRound() instead.
    if (workersRunning)
        return profileSnapshot;
    SimProfile profile;
    collectProfile(profile);
    return profile;
}

std::size_t
Simulator::pendingEvents() const
{
    std::size_t n = 0;
    for (const auto &sp : shardStates)
        n += sp->q.size() + sp->outbox.size();
    return n;
}

std::uint64_t
Simulator::run(Tick until)
{
    if (shardStates.size() == 1)
        return runSerial(until);
    return runParallel(until);
}

std::uint64_t
Simulator::runSerial(Tick until)
{
    Shard &sh = *shardStates[0];
    const std::uint64_t before = modelExecuted();
    stopRequested.store(false, std::memory_order_relaxed);
    while (!stopRequested.load(std::memory_order_relaxed)) {
        Tick when = 0;
        EventFn fn;
        if (!sh.q.popNextIfBefore(until, when, fn)) {
            if (sh.q.empty())
                break; // drained
            // Next event is beyond the bound; never move the clock
            // backwards when the bound is in the past.
            sh.clock = std::max(sh.clock, until);
            break;
        }
        sh.clock = when;
        fn();
    }
    return modelExecuted() - before;
}

std::uint64_t
Simulator::runParallel(Tick until)
{
    if (lookaheadTicks == 0)
        panic("sharded run: setLookahead() must be called with a "
              "positive horizon first");
    stopRequested.store(false, std::memory_order_relaxed);
    const std::uint64_t before = modelExecuted();
    parallelPhase = true;
    workersRunning = true;
    roundDone = false;
    std::barrier<> gate(
        static_cast<std::ptrdiff_t>(shardStates.size()));

    // Two barriers per window: the first closes the previous window
    // (all mailbox writes quiesced) so the leader can drain and plan
    // alone; the second publishes the plan. All shared plain-field
    // accesses are ordered by the barriers.
    auto body = [&](unsigned s) {
        t_currentShard = s;
        Shard &sh = *shardStates[s];
        for (;;) {
            // Wall clock feeds the self-profiling barrier-stall
            // counter only; it never reaches simulated state.
            const auto wait_from = // detlint:allow(wall-clock)
                std::chrono::steady_clock::now();
            gate.arrive_and_wait();
            if (s == 0)
                planRound(until);
            gate.arrive_and_wait();
            sh.barrierWaitNanos += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - // detlint:allow(wall-clock)
                    wait_from)
                    .count());
            if (roundDone)
                break;
            const Tick bound = roundBound;
            Tick when = 0;
            EventFn fn;
            while (sh.q.popNextIfBefore(bound, when, fn)) {
                sh.clock = when;
                fn();
                if (stopRequested.load(std::memory_order_relaxed))
                    break;
            }
        }
        t_currentShard = 0;
    };

    std::vector<std::thread> workers;
    workers.reserve(shardStates.size() - 1);
    for (unsigned s = 1; s < shardStates.size(); ++s)
        workers.emplace_back(body, s);
    body(0);
    for (auto &w : workers)
        w.join();
    workersRunning = false;
    parallelPhase = false;
    return modelExecuted() - before;
}

void
Simulator::drainMailboxes()
{
    // Leader-only (or single-threaded) barrier work, in a fixed
    // order so cross-shard arrivals are deterministic:
    //  (a) apply queued-event cancellations,
    //  (b) recycle slots whose deliveries fired last window,
    //  (c) drain outboxes source-major -- same-tick crossings enqueue
    //      in (source shard, post order), independent of thread
    //      interleaving.
    for (auto &sp : shardStates) {
        Shard &src = *sp;
        for (std::uint32_t idx : src.cancelReq) {
            CrossMsg &m = *src.slab[idx];
            shardStates[m.dst]->q.cancel(m.queued);
            recycleMsg(src, idx);
        }
        src.cancelReq.clear();
        for (auto [msrc, idx] : src.retired)
            recycleMsg(*shardStates[msrc], idx);
        src.retired.clear();
    }
    for (unsigned s = 0; s < shardStates.size(); ++s) {
        Shard &src = *shardStates[s];
        for (std::uint32_t idx : src.outbox) {
            CrossMsg *m = src.slab[idx].get();
            if (m->state == kMsgCancelled) {
                recycleMsg(src, idx);
                continue;
            }
            m->queued = shardStates[m->dst]->q.schedule(
                m->when,
                [this, m, s, idx] { fireCross(m, s, idx); },
                m->order);
            m->state = kMsgQueued;
            ++mailboxDrainedCount;
        }
        src.outbox.clear();
    }
}

void
Simulator::planRound(Tick until)
{
    drainMailboxes();

    // Workers are parked between the two barriers, so the per-shard
    // counters are quiescent: refresh the snapshot shard-0 telemetry
    // events read during the coming window.
    collectProfile(profileSnapshot);

    if (stopRequested.load(std::memory_order_relaxed)) {
        finishRound(until, EndReason::Stopped);
        return;
    }
    Tick next = kMaxTick;
    bool all_empty = true;
    for (const auto &sp : shardStates) {
        next = std::min(next, sp->q.nextTime());
        all_empty = all_empty && sp->q.empty();
    }
    if (all_empty) {
        finishRound(until, EndReason::Drained);
        return;
    }
    if (next > until) {
        finishRound(until, EndReason::Bound);
        return;
    }
    const Tick horizon = lookaheadTicks - 1;
    roundBound =
        std::min(until, next > kMaxTick - horizon ? kMaxTick
                                                  : next + horizon);
    roundDone = false;
    ++windowCount;
}

void
Simulator::finishRound(Tick until, EndReason reason)
{
    // Equalise the shard clocks so post-run scheduling sees one
    // coherent "now", mirroring the serial semantics: the clock rests
    // at the latest executed event, clamped up to the bound when
    // events remain beyond it.
    Tick fin = 0;
    for (const auto &sp : shardStates)
        fin = std::max(fin, sp->clock);
    if (reason == EndReason::Bound)
        fin = std::max(fin, until);
    for (auto &sp : shardStates)
        sp->clock = fin;
    roundDone = true;
}

std::uint64_t
Simulator::runSteps(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    stopRequested.store(false, std::memory_order_relaxed);
    if (shardStates.size() == 1) {
        Shard &sh = *shardStates[0];
        while (executed < max_events &&
               !stopRequested.load(std::memory_order_relaxed)) {
            Tick when = 0;
            EventFn fn;
            if (!sh.q.popNext(when, fn))
                break;
            sh.clock = when;
            fn();
            ++executed;
        }
        return executed;
    }

    // Sequentialised stepping: globally earliest event first (lowest
    // shard wins ties), mailboxes drained between steps. Cross posts
    // still obey the lookahead contract so stepping and run() agree
    // on which events exist, though same-tick cross interleavings may
    // differ.
    parallelPhase = true;
    while (executed < max_events &&
           !stopRequested.load(std::memory_order_relaxed)) {
        drainMailboxes();
        unsigned best = 0;
        Tick best_t = kMaxTick;
        for (unsigned s = 0; s < shardStates.size(); ++s) {
            const Tick t = shardStates[s]->q.nextTime();
            if (t < best_t) {
                best_t = t;
                best = s;
            }
        }
        if (best_t == kMaxTick)
            break;
        Shard &sh = *shardStates[best];
        Tick when = 0;
        EventFn fn;
        if (!sh.q.popNext(when, fn))
            continue;
        t_currentShard = best;
        sh.clock = when;
        fn();
        t_currentShard = 0;
        ++executed;
    }
    drainMailboxes();
    parallelPhase = false;
    return executed;
}

} // namespace afa::sim
