/**
 * @file
 * The Simulator owns simulated time, the event queue, and the root
 * random stream. All SimObjects hold a reference to one Simulator.
 */

#ifndef AFA_SIM_SIMULATOR_HH
#define AFA_SIM_SIMULATOR_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace afa::sim {

/**
 * Discrete-event simulator: a clock, an event queue, and a root RNG.
 */
class Simulator
{
  public:
    /** Construct with the root random seed for this simulation. */
    explicit Simulator(std::uint64_t seed = 1);

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    template <typename F>
    EventHandle
    scheduleAt(Tick when, F &&fn)
    {
        if (when < currentTick)
            panicPastEvent(when);
        return events.schedule(when, std::forward<F>(fn));
    }

    /** Schedule @p fn @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleAfter(Tick delay, F &&fn)
    {
        if (delay > kMaxTick - currentTick)
            panicDelayOverflow();
        return events.schedule(currentTick + delay,
                               std::forward<F>(fn));
    }

    /** Cancel a pending event; see EventQueue::cancel. */
    bool cancel(EventHandle handle) { return events.cancel(handle); }

    /** True if @p handle refers to a pending event. */
    bool pending(EventHandle handle) const
    {
        return events.pending(handle);
    }

    /**
     * Run until the queue drains or @p until is reached.
     *
     * Events scheduled exactly at @p until do execute; the clock never
     * advances past @p until.
     *
     * @return number of events executed by this call.
     */
    std::uint64_t run(Tick until = kMaxTick);

    /**
     * Run at most @p max_events events (for debugging/stepping).
     * @return number executed.
     */
    std::uint64_t runSteps(std::uint64_t max_events);

    /** Request that run() return after the current event completes. */
    void requestStop() { stopRequested = true; }

    /** True while a stop request is outstanding. */
    bool stopping() const { return stopRequested; }

    /** Pending event count. */
    std::size_t pendingEvents() const { return events.size(); }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return events.executed(); }

    /** The root random stream (fork children from this). */
    Rng &rng() { return rootRng; }

    /** The seed the simulation was constructed with. */
    std::uint64_t seed() const { return rootRng.seed(); }

  private:
    [[noreturn]] void panicPastEvent(Tick when) const;
    [[noreturn]] static void panicDelayOverflow();

    EventQueue events;
    Tick currentTick;
    bool stopRequested;
    Rng rootRng;
};

} // namespace afa::sim

#endif // AFA_SIM_SIMULATOR_HH
