/**
 * @file
 * The Simulator owns simulated time, the event queues, and the root
 * random stream. All SimObjects hold a reference to one Simulator.
 *
 * With the default shard count of 1 this is the classic serial DES
 * core. With N > 1 shards it becomes a conservatively synchronised
 * parallel core: every SimObject belongs to exactly one shard, each
 * shard owns a private EventQueue and clock, and execution proceeds in
 * barrier-delimited windows. Each window the leader computes
 *
 *     M     = min over shards of the earliest pending event
 *     bound = min(until, M + L - 1)
 *
 * where L is the lookahead horizon (the minimum positive cross-shard
 * propagation latency, set by the model via setLookahead()), and every
 * shard executes its events with time <= bound in parallel. Events
 * that target another shard travel through the inter-shard mailbox
 * (scheduleOnShard()): posts are queued locally and drained by the
 * leader at the next barrier in source-major order, which gives
 * same-tick cross-shard deliveries a deterministic FIFO order that is
 * independent of thread scheduling. A cross post must be at least L
 * ticks in the future; the window bound guarantees it lands in a
 * strictly later window than the event that posted it, so no shard
 * ever receives an event in its past.
 *
 * Cancellation of a cross event is legal only from the posting shard
 * and only while the event is at least one full window away
 * (now + L <= when). Under that contract a cancellation is processed
 * at a barrier that strictly precedes the delivery's window, so a
 * cancelled crossing never fires -- cancel/deliver races are resolved
 * by barrier order, not by atomics.
 */

#ifndef AFA_SIM_SIMULATOR_HH
#define AFA_SIM_SIMULATOR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/shard.hh"
#include "sim/types.hh"

namespace afa::sim {

/**
 * Per-shard execution counters for the simulator's self-profiling
 * source (telemetry). All simulated-time fields are bit-identical
 * across replays of the same configuration; barrierWaitNanos is host
 * wall time and is diagnostic only.
 */
struct ShardStat
{
    /** Model events executed on this shard (plumbing excluded). */
    std::uint64_t executedEvents = 0;
    /** Internal engine events (mailbox ships, telemetry samples). */
    std::uint64_t plumbingEvents = 0;
    /** scheduleOnShard() posts from this shard to a different one. */
    std::uint64_t crossPosts = 0;
    /** Host wall time this shard's thread spent parked at window
     *  barriers (includes the leader's drain/plan work for shard 0;
     *  zero in serial runs). */
    std::uint64_t barrierWaitNanos = 0;
};

/** Snapshot returned by Simulator::shardStats(). */
struct SimProfile
{
    std::vector<ShardStat> shards;
    /** Barrier-delimited execution windows planned so far. */
    std::uint64_t windows = 0;
    /** Cross-shard messages enqueued by the leader at barriers. */
    std::uint64_t mailboxDrained = 0;
};

/**
 * Discrete-event simulator: per-shard clocks and event queues, an
 * inter-shard mailbox, and a root RNG.
 */
class Simulator
{
  public:
    /** Hard cap on shards (cross-handle encoding allows far more;
     *  the cap keeps misconfigured inputs loud). */
    static constexpr unsigned kMaxShards = 64;

    /**
     * Construct with the root random seed and the shard count.
     * shard_count == 1 (the default) is the serial core; the root RNG
     * and all name-forked child streams are identical at any count.
     */
    explicit Simulator(std::uint64_t seed = 1, unsigned shard_count = 1);

    /** Number of shards (1 = serial). */
    unsigned shards() const
    {
        return static_cast<unsigned>(shardStates.size());
    }

    /**
     * Set the conservative lookahead horizon. Must be positive before
     * a sharded run(); cross-shard posts must be at least this far in
     * the future. The model derives it from its minimum cross-shard
     * latency (the PCIe fabric's minimum link propagation delay). A
     * horizon is a span of simulated time, not an absolute time, so
     * the API speaks TickDelta.
     */
    void
    setLookahead(TickDelta horizon)
    {
        lookaheadTicks = static_cast<Tick>(horizon.count());
    }

    /** The conservative sync horizon (zero = never set). */
    TickDelta
    lookahead() const
    {
        return TickDelta{static_cast<std::int64_t>(lookaheadTicks)};
    }

    /** Current simulated time on the calling thread's shard. */
    Tick now() const { return localShard().clock; }

    /** Schedule @p fn at absolute time @p when (>= now) on the
     *  calling thread's shard. */
    template <typename F>
    EventHandle
    scheduleAt(Tick when, F &&fn)
    {
        Shard &sh = localShard();
        if (when < sh.clock)
            panicPastEvent(when, sh.clock);
        return sh.q.schedule(when, std::forward<F>(fn));
    }

    /** Schedule @p fn @p delay ticks from now on the calling
     *  thread's shard. */
    template <typename F>
    EventHandle
    scheduleAfter(Tick delay, F &&fn)
    {
        Shard &sh = localShard();
        if (delay > kMaxTick - sh.clock)
            panicDelayOverflow();
        return sh.q.schedule(sh.clock + delay, std::forward<F>(fn));
    }

    /**
     * Schedule @p fn at absolute time @p when on @p shard -- the only
     * way to make another shard do something.
     *
     * Outside the parallel phase (setup code, serial runs) or when
     * @p shard is the calling shard, this degenerates to a direct
     * schedule into the target queue. During a parallel run it posts
     * into the mailbox and requires when >= now + lookahead.
     *
     * @param internal marks engine plumbing (e.g. shipping a send to
     *        the fabric's shard) whose count depends on the execution
     *        strategy; such events are excluded from executedEvents()
     *        so the count stays bit-identical across shard counts.
     * @param order same-tick ordering band (see EventQueue::schedule).
     *        Cross-capable events MUST use a non-zero, model-derived
     *        band: a band-0 event's same-tick position is its FIFO
     *        insertion rank, which differs between the direct path
     *        (inserted when posted) and the mailbox path (inserted at
     *        a barrier). A non-zero band makes the same-tick position
     *        a function of (tick, band, poster order) only, identical
     *        at any shard count. Conventions used by the model layers:
     *        0 = plain local events, 1 = fault-plan control posts,
     *        2 + <fabric node id> = packet deliveries to / ships from
     *        that node.
     * @return a handle; mailbox handles are tagged and may only be
     *         cancelled/reclaimed from the posting shard while the
     *         event is at least one lookahead window away.
     */
    EventHandle scheduleOnShard(unsigned shard, Tick when, EventFn fn,
                                bool internal = false,
                                std::uint32_t order = 0);

    /** Cancel a pending event; see EventQueue::cancel. Cross-shard
     *  handles obey the window contract documented on
     *  scheduleOnShard(). */
    bool cancel(EventHandle handle);

    /** True if @p handle refers to a pending event. */
    bool pending(EventHandle handle) const;

    /**
     * Cancel a pending event posted via scheduleOnShard() and take
     * back its callback (for re-routing, e.g. a fast-path flight
     * displaced after its delivery was already posted). Works on both
     * mailbox handles (cross-shard posts; the window contract of
     * scheduleOnShard() applies) and plain handles of the calling
     * shard's queue (same-shard posts). Panics if the event already
     * fired or was cancelled: callers use this only when the contract
     * guarantees the event cannot have fired.
     */
    EventFn reclaim(EventHandle handle);

    /**
     * Run until every queue drains or @p until is reached.
     *
     * Events scheduled exactly at @p until do execute; no clock
     * advances past @p until. On return all shard clocks are
     * equalised to the global maximum (clamped up to @p until when
     * events remain), matching the serial clock semantics.
     *
     * @return number of model events executed by this call
     *         (excluding internal plumbing events).
     */
    std::uint64_t run(Tick until = kMaxTick);

    /**
     * Run at most @p max_events events (for debugging/stepping).
     * Sharded simulators are stepped sequentially in global time
     * order, one event at a time, with mailboxes drained between
     * steps -- same-tick cross-shard interleavings may differ from a
     * parallel run().
     * @return number executed.
     */
    std::uint64_t runSteps(std::uint64_t max_events);

    /** Request that run() return after the current window completes
     *  (after the current event, when serial). Safe from any shard. */
    void
    requestStop()
    {
        stopRequested.store(true, std::memory_order_relaxed);
    }

    /** True while a stop request is outstanding. */
    bool
    stopping() const
    {
        return stopRequested.load(std::memory_order_relaxed);
    }

    /** Pending event count, summed over all shards. */
    std::size_t pendingEvents() const;

    /** Total model events executed since construction, summed over
     *  all shards and excluding internal plumbing events, so the
     *  value is bit-identical across shard counts. */
    std::uint64_t executedEvents() const;

    /**
     * Self-profiling snapshot: per-shard executed/plumbing event
     * counts, cross-shard mailbox posts, barrier wait wall time, and
     * the global window/drain counters.
     *
     * Safe to call from a shard-0 event during a parallel run: the
     * leader refreshes the snapshot at every window barrier (while
     * all workers are parked), and shard-0 events execute on the
     * leader thread, so the read is same-thread and at most one
     * window stale. Outside the parallel phase the snapshot is
     * computed live.
     */
    SimProfile shardStats() const;

    /** The root random stream (fork children from this). */
    Rng &rng() { return rootRng; }

    /** The seed the simulation was constructed with. */
    std::uint64_t seed() const { return rootRng.seed(); }

    /** Panic unless @p shard names a valid shard. */
    void checkShardId(unsigned shard) const;

  private:
    friend class ShardScope;

    /** Mailbox entry states; transitions are barrier-ordered. */
    enum MsgState : std::uint8_t {
        kMsgFree,      ///< slot on the freelist
        kMsgOutbox,    ///< posted, not yet drained by the leader
        kMsgQueued,    ///< scheduled into the destination queue
        kMsgCancelled, ///< cancelled before delivery
        kMsgFired,     ///< delivered; slot awaiting recycle
    };

    /** One cross-shard message. Stable address (owned via
     *  unique_ptr) so the destination shard can fire it while the
     *  source shard grows its slab. */
    struct CrossMsg
    {
        EventFn fn;
        Tick when = 0;
        EventHandle queued{};
        std::uint32_t gen = 0;
        std::uint32_t order = 0; ///< same-tick ordering band
        std::uint16_t dst = 0;
        MsgState state = kMsgFree;
        bool internal = false;
    };

    /** Per-shard state. Mailbox vectors are written only by the
     *  owning thread during the parallel phase and by the leader at
     *  barriers; retired is the exception -- it collects (src, idx)
     *  pairs for messages *delivered on this shard*, so it too is
     *  only written by its owner. */
    struct alignas(64) Shard
    {
        EventQueue q;
        Tick clock = 0;
        std::uint64_t plumbing = 0; ///< internal events executed here
        std::uint64_t crossPosts = 0; ///< posts to other shards
        std::uint64_t barrierWaitNanos = 0; ///< wall ns at barriers
        std::vector<std::unique_ptr<CrossMsg>> slab;
        std::vector<std::uint32_t> freeSlab;
        std::vector<std::uint32_t> outbox;
        std::vector<std::uint32_t> cancelReq;
        std::vector<std::pair<std::uint16_t, std::uint32_t>> retired;
    };

    /** Cross-handle encoding in EventHandle::slot: bit 31 tags a
     *  mailbox handle (real queue slots use 24 bits; kNullSlot is
     *  excluded by valid()), bits 30..20 the source shard, bits
     *  19..0 the slab index. */
    static constexpr std::uint32_t kCrossBit = 0x80000000u;
    static constexpr unsigned kCrossSrcShift = 20;
    static constexpr std::uint32_t kCrossIdxMask = (1u << 20) - 1;

    Shard &
    localShard()
    {
        return *shardStates[t_currentShard];
    }
    const Shard &
    localShard() const
    {
        return *shardStates[t_currentShard];
    }

    enum class EndReason { Stopped, Drained, Bound };

    std::uint64_t runSerial(Tick until);
    std::uint64_t runParallel(Tick until);
    void planRound(Tick until);
    void finishRound(Tick until, EndReason reason);
    void drainMailboxes();
    void fireCross(CrossMsg *msg, unsigned src, std::uint32_t idx);
    void recycleMsg(Shard &src, std::uint32_t idx);
    bool cancelCross(EventHandle handle, EventFn *reclaimed);
    std::uint64_t modelExecuted() const;
    void collectProfile(SimProfile &out) const;

    [[noreturn]] static void panicPastEvent(Tick when, Tick now_tick);
    [[noreturn]] static void panicDelayOverflow();

    std::vector<std::unique_ptr<Shard>> shardStates;
    Tick lookaheadTicks = 0;
    Tick roundBound = 0;
    bool roundDone = false;
    bool parallelPhase = false;
    bool workersRunning = false; ///< inside runParallel()'s threads
    std::uint64_t windowCount = 0;        ///< windows planned
    std::uint64_t mailboxDrainedCount = 0; ///< messages enqueued
    /** Leader-written at each barrier; read by shard-0 events (same
     *  thread) while workers are parked. */
    SimProfile profileSnapshot;
    std::atomic<bool> stopRequested;
    Rng rootRng;
};

/**
 * RAII shard-affinity scope for setup code: SimObjects constructed
 * (and start()-ed) inside the scope schedule into the given shard.
 * Only meaningful outside the parallel phase; worker threads pin
 * their own cursor.
 */
class ShardScope
{
  public:
    ShardScope(Simulator &sim, unsigned shard) : saved(t_currentShard)
    {
        sim.checkShardId(shard);
        t_currentShard = shard;
    }
    ~ShardScope() { t_currentShard = saved; }
    ShardScope(const ShardScope &) = delete;
    ShardScope &operator=(const ShardScope &) = delete;

  private:
    unsigned saved;
};

} // namespace afa::sim

#endif // AFA_SIM_SIMULATOR_HH
