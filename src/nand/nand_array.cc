#include "nand/nand_array.hh"

#include <algorithm>

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::nand {

NandArray::NandArray(afa::sim::Simulator &simulator,
                     std::string array_name,
                     const NandParams &nand_params)
    : SimObject(simulator, std::move(array_name)),
      nandParams(nand_params)
{
    if (nandParams.channels == 0 || nandParams.diesPerChannel == 0)
        afa::sim::fatal("%s: NAND geometry must be >= 1x1",
                        name().c_str());
    dieBusy.assign(nandParams.totalDies(), 0);
    channelBusy.assign(nandParams.channels, 0);
}

std::size_t
NandArray::dieIndex(const PageAddr &addr) const
{
    return addr.channel * nandParams.diesPerChannel + addr.die;
}

void
NandArray::checkAddr(const PageAddr &addr) const
{
    if (addr.channel >= nandParams.channels ||
        addr.die >= nandParams.diesPerChannel ||
        addr.block >= nandParams.blocksPerDie ||
        addr.page >= nandParams.pagesPerBlock)
        afa::sim::panic("%s: bad NAND address ch%u die%u blk%u pg%u",
                        name().c_str(), addr.channel, addr.die,
                        addr.block, addr.page);
}

Tick
NandArray::transferTime(afa::sim::Bytes bytes) const
{
    return afa::sim::transferTicks(bytes, nandParams.channelMBps * 1e6);
}

PageAddr
NandArray::addrForDie(unsigned linear_die, std::uint32_t block,
                      std::uint32_t page) const
{
    if (linear_die >= nandParams.totalDies())
        afa::sim::panic("%s: linear die %u out of range",
                        name().c_str(), linear_die);
    return PageAddr{linear_die / nandParams.diesPerChannel,
                    linear_die % nandParams.diesPerChannel, block, page};
}

Tick
NandArray::readAt(const PageAddr &addr, std::uint32_t bytes,
                  Tick start_floor, std::uint64_t io)
{
    checkAddr(addr);
    std::size_t di = dieIndex(addr);
    // Die occupies for tR...
    Tick t_r = static_cast<Tick>(
        rng().lognormal(static_cast<double>(nandParams.readLatency),
                        nandParams.readSigma));
    Tick die_start = std::max(start_floor, dieBusy[di]);
    Tick die_end = die_start + t_r;
    dieBusy[di] = die_end;
    nandStats.dieBusyTime += t_r;
    // ...then the channel for the data-out transfer.
    Tick xfer = transferTime(afa::sim::Bytes{bytes});
    Tick ch_start = std::max(die_end, channelBusy[addr.channel]);
    Tick ch_end = ch_start + xfer;
    channelBusy[addr.channel] = ch_end;
    nandStats.channelBusyTime += xfer;
    ++nandStats.reads;
    if (spanLog && spanLog->wants(afa::obs::Category::Nand))
        spanLog->record(afa::obs::Stage::NandRead, io, die_start,
                        ch_end, spanTrack, 0,
                        addr.channel * nandParams.diesPerChannel +
                            addr.die);
    return ch_end;
}

Tick
NandArray::read(const PageAddr &addr, std::uint32_t bytes, DoneFn done,
                std::uint64_t io)
{
    Tick ch_end = readAt(addr, bytes, now(), io);
    at(ch_end, std::move(done));
    return ch_end;
}

Tick
NandArray::program(const PageAddr &addr, std::uint32_t bytes,
                   DoneFn done)
{
    checkAddr(addr);
    std::size_t di = dieIndex(addr);
    // Data-in over the channel first...
    Tick xfer = transferTime(afa::sim::Bytes{bytes});
    Tick ch_start = std::max(now(), channelBusy[addr.channel]);
    Tick ch_end = ch_start + xfer;
    channelBusy[addr.channel] = ch_end;
    nandStats.channelBusyTime += xfer;
    // ...then the die programs.
    Tick t_prog = static_cast<Tick>(rng().lognormal(
        static_cast<double>(nandParams.programLatency),
        nandParams.programSigma));
    Tick die_start = std::max(ch_end, dieBusy[di]);
    Tick die_end = die_start + t_prog;
    dieBusy[di] = die_end;
    nandStats.dieBusyTime += t_prog;
    ++nandStats.programs;
    at(die_end, std::move(done));
    return die_end;
}

Tick
NandArray::erase(const PageAddr &addr, DoneFn done)
{
    checkAddr(addr);
    std::size_t di = dieIndex(addr);
    Tick t_erase = static_cast<Tick>(rng().lognormal(
        static_cast<double>(nandParams.eraseLatency),
        nandParams.eraseSigma));
    Tick die_start = std::max(now(), dieBusy[di]);
    Tick die_end = die_start + t_erase;
    dieBusy[di] = die_end;
    nandStats.dieBusyTime += t_erase;
    ++nandStats.erases;
    at(die_end, std::move(done));
    return die_end;
}

Tick
NandArray::dieFreeAt(unsigned channel, unsigned die) const
{
    return dieBusy[channel * nandParams.diesPerChannel + die];
}

} // namespace afa::nand
