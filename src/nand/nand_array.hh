/**
 * @file
 * NAND flash package model: channels of dies with read/program/erase
 * timing and per-channel bus transfer arbitration.
 *
 * Used by the FTL for mapped (written) data; fresh-out-of-box reads
 * never reach NAND (the controller answers unmapped reads from the
 * zero-fill fast path), matching the paper's FOB methodology.
 */

#ifndef AFA_NAND_NAND_ARRAY_HH
#define AFA_NAND_NAND_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace afa::obs {
class SpanLog;
} // namespace afa::obs

namespace afa::nand {

using afa::sim::Tick;

/** Timing and geometry of the NAND package (3D MLC-class defaults). */
struct NandParams
{
    unsigned channels = 8;
    unsigned diesPerChannel = 4;
    std::uint32_t pageBytes = 16384;
    std::uint32_t pagesPerBlock = 256;
    std::uint32_t blocksPerDie = 1024;

    Tick readLatency = afa::sim::usec(50);    ///< tR median
    double readSigma = 0.08;                  ///< lognormal spread
    Tick programLatency = afa::sim::usec(1300); ///< tProg median
    double programSigma = 0.05;
    Tick eraseLatency = afa::sim::msec(4);    ///< tBERS median
    double eraseSigma = 0.05;
    double channelMBps = 640.0;               ///< bus bandwidth

    unsigned totalDies() const { return channels * diesPerChannel; }
    std::uint64_t
    pagesTotal() const
    {
        return std::uint64_t(totalDies()) * blocksPerDie * pagesPerBlock;
    }
};

/** Physical page address within the package. */
struct PageAddr
{
    unsigned channel;
    unsigned die;
    std::uint32_t block;
    std::uint32_t page;
};

/** Per-die / per-channel utilisation counters. */
struct NandStats
{
    std::uint64_t reads = 0;
    std::uint64_t programs = 0;
    std::uint64_t erases = 0;
    Tick dieBusyTime = 0;
    Tick channelBusyTime = 0;
};

/**
 * Event-driven NAND package.
 *
 * Each die is a serialising resource (one operation at a time); each
 * channel bus serialises data transfers. A read occupies the die for
 * tR, then the channel for the transfer; programs occupy the channel
 * for the data-in transfer, then the die for tProg.
 */
class NandArray : public afa::sim::SimObject
{
  public:
    using DoneFn = std::function<void()>;

    NandArray(afa::sim::Simulator &simulator, std::string array_name,
              const NandParams &nand_params);

    /**
     * Read @p bytes from a page; @p done fires at data-out end (the
     * returned tick). @p io tags the obs span, when one is recorded.
     */
    Tick read(const PageAddr &addr, std::uint32_t bytes, DoneFn done,
              std::uint64_t io = 0);

    /**
     * Claim-only read for the controller's single-event command fast
     * path: identical die/channel horizon arithmetic, RNG draw, span
     * and stats as read() with now() == @p start_floor, but no
     * completion event is scheduled -- the caller folds the returned
     * data-out tick into its own single completion event.
     */
    Tick readAt(const PageAddr &addr, std::uint32_t bytes,
                Tick start_floor, std::uint64_t io = 0);

    /**
     * Program a page; @p done fires when tProg completes (the
     * returned tick).
     */
    Tick program(const PageAddr &addr, std::uint32_t bytes,
                 DoneFn done);

    /**
     * Erase a block; @p done fires when tBERS completes (the
     * returned tick).
     */
    Tick erase(const PageAddr &addr, DoneFn done);

    /** Attach the span log; spans use @p track (the owning SSD's). */
    void
    setSpanLog(afa::obs::SpanLog *log, std::uint16_t track)
    {
        spanLog = log;
        spanTrack = track;
    }

    /**
     * Map a linear die index (0..totalDies-1) to a channel/die pair;
     * convenience for striping FTLs.
     */
    PageAddr
    addrForDie(unsigned linear_die, std::uint32_t block,
               std::uint32_t page) const;

    const NandParams &params() const { return nandParams; }
    const NandStats &stats() const { return nandStats; }

    /** Earliest time the given die is free (for tests). */
    Tick dieFreeAt(unsigned channel, unsigned die) const;

  private:
    NandParams nandParams;
    // busy horizons
    std::vector<Tick> dieBusy;     // [channel * diesPerChannel + die]
    std::vector<Tick> channelBusy; // [channel]
    NandStats nandStats;
    afa::obs::SpanLog *spanLog = nullptr;
    std::uint16_t spanTrack = 0;

    std::size_t dieIndex(const PageAddr &addr) const;
    void checkAddr(const PageAddr &addr) const;
    Tick transferTime(afa::sim::Bytes bytes) const;
};

} // namespace afa::nand

#endif // AFA_NAND_NAND_ARRAY_HH
