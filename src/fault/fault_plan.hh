/**
 * @file
 * FaultPlan: a deterministic, replayable schedule of typed fault
 * events parsed from a small text spec.
 *
 * A plan is pure data — which SSD misbehaves, when, for how long, and
 * how badly — plus the host driver's timeout/retry policy. The
 * FaultEngine applies it onto the sim clock; every random draw the
 * faults cause (PCIe replay coin flips) comes from the engine's
 * seeded stream, so a faulted run replays byte-identically at any
 * --jobs / --seeds (DESIGN.md "Fault model & recovery contract").
 *
 * Spec format, one directive per line, '#' comments:
 *
 *     # driver policy
 *     timeout_ms 10
 *     max_retries 3
 *     retry_backoff_ms 1
 *
 *     # fault events (times/durations in milliseconds of sim time)
 *     limp       ssd=3 at_ms=20 dur_ms=40 factor=8
 *     dropout    ssd=5 at_ms=10 dur_ms=15
 *     link_error ssd=2 at_ms=5  dur_ms=30 rate=0.2
 *     ctrl_stall ssd=0 at_ms=12 dur_ms=2
 */

#ifndef AFA_FAULT_FAULT_PLAN_HH
#define AFA_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace afa::fault {

using afa::sim::Tick;

/** The fault taxonomy (DESIGN.md §11). */
enum class FaultKind : std::uint8_t {
    /** Device serves IO but media/pipeline time scales by `factor`. */
    Limp,
    /** Device stops answering entirely; commands sent to it are lost
     *  and only the host driver's timeout path recovers them. */
    Dropout,
    /** The device's PCIe links corrupt TLPs with probability `rate`;
     *  each corrupted transfer is replayed (retransmitted) in full. */
    LinkError,
    /** Controller pipeline freezes (firmware-internal stall). */
    CtrlStall,
};

/** Stable display name of a fault kind ("limp", "dropout", ...). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault: [at, at + duration) on one SSD. */
struct FaultEvent
{
    FaultKind kind = FaultKind::Limp;
    unsigned ssd = 0;     ///< target SSD index
    Tick at = 0;          ///< onset (sim time)
    Tick duration = 0;    ///< how long the fault persists
    double factor = 1.0;  ///< Limp: latency multiplier (> 1)
    double rate = 0.0;    ///< LinkError: per-transfer error probability
};

/**
 * A parsed fault plan: the event schedule plus the host driver
 * timeout/retry policy that is armed whenever a plan is loaded.
 */
struct FaultPlan
{
    /** Driver command timeout; expired commands are retried. */
    Tick nvmeTimeout = afa::sim::msec(10);
    /** Retries before the driver gives up (Status::TimedOut). */
    unsigned maxRetries = 3;
    /** First retry backoff; doubles per attempt (bounded by retries). */
    Tick retryBackoff = afa::sim::msec(1);

    std::vector<FaultEvent> events;

    /** Parse a plan from a spec file; sim::fatal on syntax errors. */
    static FaultPlan parseFile(const std::string &path);

    /** Parse a plan from spec text (for tests). */
    static FaultPlan parseText(std::string_view text,
                               std::string_view origin = "<text>");

    /** Human-readable one-event-per-line summary (--fault-summary). */
    std::string summary() const;
};

} // namespace afa::fault

#endif // AFA_FAULT_FAULT_PLAN_HH
