/**
 * @file
 * FaultEngine: applies a FaultPlan onto the sim clock.
 *
 * One SimObject ("afa.faults") that, at start(), schedules an
 * apply/revert event pair for every plan event and flips the fault
 * hooks on the target components: Controller limp/offline/stall,
 * Fabric per-endpoint link error rates. Its per-object random stream
 * (forked from the run seed by name, like every SimObject) is the
 * plan's seeded stream: it is handed to the Fabric for replay coin
 * flips, and nothing else may draw fault randomness (detlint:
 * fault-rng). Because SimObject streams are forked by name, adding
 * the engine to a run does not perturb any other component's draws —
 * a run with an empty plan is tick-identical to a run with none.
 */

#ifndef AFA_FAULT_FAULT_ENGINE_HH
#define AFA_FAULT_FAULT_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.hh"
#include "nvme/controller.hh"
#include "pcie/fabric.hh"
#include "sim/sim_object.hh"

namespace afa::fault {

/** Fault application counters (publishMetrics / tests). */
struct FaultEngineStats
{
    std::uint64_t applied = 0;  ///< fault onsets fired
    std::uint64_t reverted = 0; ///< fault windows closed
    std::uint64_t active = 0;   ///< faults currently in force
};

/** Applies a FaultPlan's events to the controllers and fabric. */
class FaultEngine : public afa::sim::SimObject
{
  public:
    /**
     * @p controllers and @p ssd_nodes are parallel, indexed by the
     * plan's `ssd=` field; @p fabric may be null when no LinkError
     * event targets it (unit tests). @p ssd_shards (parallel, may be
     * empty = all shard 0) names the shard each controller executes
     * on under a sharded Simulator.
     */
    FaultEngine(afa::sim::Simulator &simulator,
                std::shared_ptr<const FaultPlan> fault_plan,
                std::vector<afa::nvme::Controller *> controllers,
                afa::pcie::Fabric *fabric_ptr,
                std::vector<afa::pcie::NodeId> ssd_nodes,
                std::vector<unsigned> ssd_shards = {});

    /**
     * Validate targets and schedule every apply/revert event.
     *
     * Serial runs schedule one apply and one revert event per plan
     * event, both on the engine's shard. Sharded runs keep the books
     * and all fabric-side state here (shard 0) at the exact same
     * ticks, and post the controller mutators to each target SSD's
     * own shard — also at the exact plan ticks, which is legal
     * because the posts happen at setup time, before the parallel
     * phase begins. The engine's single name-forked RNG stream is
     * untouched: all replay draws happen on the fabric's shard, so
     * faulted runs replay identically at any shard count.
     */
    void start();

    const FaultPlan &plan() const { return *planRef; }
    const FaultEngineStats &stats() const { return engStats; }

  private:
    std::shared_ptr<const FaultPlan> planRef;
    std::vector<afa::nvme::Controller *> ctrls;
    afa::pcie::Fabric *fabric;
    std::vector<afa::pcie::NodeId> ssdNodes;
    std::vector<unsigned> ssdShards;
    FaultEngineStats engStats;

    void apply(const FaultEvent &event);
    void revert(const FaultEvent &event);
    void applyCtrl(const FaultEvent &event);
    void revertCtrl(const FaultEvent &event);
};

} // namespace afa::fault

#endif // AFA_FAULT_FAULT_ENGINE_HH
