#include "fault/fault_engine.hh"

#include "sim/logging.hh"

namespace afa::fault {

FaultEngine::FaultEngine(afa::sim::Simulator &simulator,
                         std::shared_ptr<const FaultPlan> fault_plan,
                         std::vector<afa::nvme::Controller *> controllers,
                         afa::pcie::Fabric *fabric_ptr,
                         std::vector<afa::pcie::NodeId> ssd_nodes)
    : SimObject(simulator, "afa.faults"), planRef(std::move(fault_plan)),
      ctrls(std::move(controllers)), fabric(fabric_ptr),
      ssdNodes(std::move(ssd_nodes))
{
    if (!planRef)
        afa::sim::panic("%s: constructed without a plan",
                        name().c_str());
}

void
FaultEngine::start()
{
    for (const FaultEvent &ev : planRef->events) {
        bool needs_ctrl = ev.kind != FaultKind::LinkError;
        if (needs_ctrl && ev.ssd >= ctrls.size())
            afa::sim::fatal("fault plan: %s targets ssd%u but the "
                            "array has %zu SSDs",
                            faultKindName(ev.kind), ev.ssd,
                            ctrls.size());
        if (!needs_ctrl && (!fabric || ev.ssd >= ssdNodes.size()))
            afa::sim::fatal("fault plan: link_error targets ssd%u "
                            "but the fabric has %zu SSD endpoints",
                            ev.ssd, ssdNodes.size());
    }
    if (fabric)
        fabric->setFaultRng(&rng());
    for (const FaultEvent &ev : planRef->events) {
        const FaultEvent *e = &ev;
        at(e->at, [this, e] { apply(*e); });
        at(e->at + e->duration, [this, e] { revert(*e); });
    }
}

void
FaultEngine::apply(const FaultEvent &event)
{
    ++engStats.applied;
    ++engStats.active;
    switch (event.kind) {
      case FaultKind::Limp:
        ctrls[event.ssd]->setLimpFactor(event.factor);
        break;
      case FaultKind::Dropout:
        ctrls[event.ssd]->setOffline(true);
        break;
      case FaultKind::LinkError:
        fabric->setEndpointFault(ssdNodes[event.ssd], event.rate);
        break;
      case FaultKind::CtrlStall:
        // stallUntil() is absolute: the whole window is applied at
        // onset and drains by itself; revert() only keeps the books.
        ctrls[event.ssd]->stallUntil(event.at + event.duration);
        break;
    }
}

void
FaultEngine::revert(const FaultEvent &event)
{
    ++engStats.reverted;
    --engStats.active;
    switch (event.kind) {
      case FaultKind::Limp:
        ctrls[event.ssd]->setLimpFactor(1.0);
        break;
      case FaultKind::Dropout:
        ctrls[event.ssd]->setOffline(false);
        break;
      case FaultKind::LinkError:
        fabric->clearEndpointFault(ssdNodes[event.ssd]);
        break;
      case FaultKind::CtrlStall:
        break;
    }
}

} // namespace afa::fault
