#include "fault/fault_engine.hh"

#include "sim/logging.hh"

namespace afa::fault {

FaultEngine::FaultEngine(afa::sim::Simulator &simulator,
                         std::shared_ptr<const FaultPlan> fault_plan,
                         std::vector<afa::nvme::Controller *> controllers,
                         afa::pcie::Fabric *fabric_ptr,
                         std::vector<afa::pcie::NodeId> ssd_nodes,
                         std::vector<unsigned> ssd_shards)
    : SimObject(simulator, "afa.faults"), planRef(std::move(fault_plan)),
      ctrls(std::move(controllers)), fabric(fabric_ptr),
      ssdNodes(std::move(ssd_nodes)), ssdShards(std::move(ssd_shards))
{
    if (!planRef)
        afa::sim::panic("%s: constructed without a plan",
                        name().c_str());
}

void
FaultEngine::start()
{
    for (const FaultEvent &ev : planRef->events) {
        bool needs_ctrl = ev.kind != FaultKind::LinkError;
        if (needs_ctrl && ev.ssd >= ctrls.size())
            afa::sim::fatal("fault plan: %s targets ssd%u but the "
                            "array has %zu SSDs",
                            faultKindName(ev.kind), ev.ssd,
                            ctrls.size());
        if (!needs_ctrl && (!fabric || ev.ssd >= ssdNodes.size()))
            afa::sim::fatal("fault plan: link_error targets ssd%u "
                            "but the fabric has %zu SSD endpoints",
                            ev.ssd, ssdNodes.size());
    }
    if (fabric)
        fabric->setFaultRng(&rng());
    for (const FaultEvent &ev : planRef->events) {
        const FaultEvent *e = &ev;
        if (e->kind == FaultKind::LinkError) {
            // Pure fabric-side event: everything happens on the
            // engine's shard (the fabric's), exactly as before.
            at(e->at, [this, e] { apply(*e); });
            at(e->at + e->duration, [this, e] { revert(*e); });
            continue;
        }
        // Controller fault: the books stay here at the plan ticks;
        // the controller mutators run on the target SSD's shard at
        // those same ticks in ordering band 1 — after every plain
        // device event of the tick, before any delivery. Serial runs
        // split the same way so the mutation's same-tick position is
        // identical at any shard count. The posts are made at setup
        // time (before the parallel phase) and marked internal so the
        // model event count stays identical across shard counts.
        at(e->at, [this] {
            ++engStats.applied;
            ++engStats.active;
        });
        at(e->at + e->duration, [this] {
            ++engStats.reverted;
            --engStats.active;
        });
        const unsigned shard =
            e->ssd < ssdShards.size() ? ssdShards[e->ssd] : 0;
        sim().scheduleOnShard(shard, e->at,
                              [this, e] { applyCtrl(*e); },
                              /*internal=*/true, /*order=*/1);
        if (e->kind != FaultKind::CtrlStall)
            sim().scheduleOnShard(shard, e->at + e->duration,
                                  [this, e] { revertCtrl(*e); },
                                  /*internal=*/true, /*order=*/1);
    }
}

void
FaultEngine::apply(const FaultEvent &event)
{
    ++engStats.applied;
    ++engStats.active;
    if (event.kind == FaultKind::LinkError)
        fabric->setEndpointFault(ssdNodes[event.ssd], event.rate);
    else
        applyCtrl(event);
}

void
FaultEngine::revert(const FaultEvent &event)
{
    ++engStats.reverted;
    --engStats.active;
    if (event.kind == FaultKind::LinkError)
        fabric->clearEndpointFault(ssdNodes[event.ssd]);
    else
        revertCtrl(event);
}

/**
 * The controller-side mutators. Shard-affine by construction: in a
 * sharded run these execute on the target controller's own shard
 * (posted there via scheduleOnShard in start()); serially everything
 * is one shard anyway.
 */
void
FaultEngine::applyCtrl(const FaultEvent &event)
{
    switch (event.kind) {
      case FaultKind::Limp:
        // detlint:allow(shard-state) — runs on the owning shard
        ctrls[event.ssd]->setLimpFactor(event.factor);
        break;
      case FaultKind::Dropout:
        // detlint:allow(shard-state) — runs on the owning shard
        ctrls[event.ssd]->setOffline(true);
        break;
      case FaultKind::CtrlStall:
        // stallUntil() is absolute: the whole window is applied at
        // onset and drains by itself; revert only keeps the books.
        // detlint:allow(shard-state) — runs on the owning shard
        ctrls[event.ssd]->stallUntil(event.at + event.duration);
        break;
      case FaultKind::LinkError:
        break;
    }
}

void
FaultEngine::revertCtrl(const FaultEvent &event)
{
    switch (event.kind) {
      case FaultKind::Limp:
        // detlint:allow(shard-state) — runs on the owning shard
        ctrls[event.ssd]->setLimpFactor(1.0);
        break;
      case FaultKind::Dropout:
        // detlint:allow(shard-state) — runs on the owning shard
        ctrls[event.ssd]->setOffline(false);
        break;
      case FaultKind::CtrlStall:
      case FaultKind::LinkError:
        break;
    }
}

} // namespace afa::fault
