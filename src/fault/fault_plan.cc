#include "fault/fault_plan.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace afa::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Limp:
        return "limp";
      case FaultKind::Dropout:
        return "dropout";
      case FaultKind::LinkError:
        return "link_error";
      case FaultKind::CtrlStall:
        return "ctrl_stall";
    }
    return "unknown";
}

namespace {

[[noreturn]] void
planError(std::string_view origin, unsigned line, const char *what)
{
    afa::sim::fatal("fault plan %.*s:%u: %s",
                    static_cast<int>(origin.size()), origin.data(),
                    line, what);
}

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(std::string_view line)
{
    std::vector<std::string> out;
    std::string token;
    for (char c : line) {
        if (c == '#')
            break;
        if (c == ' ' || c == '\t' || c == '\r') {
            if (!token.empty())
                out.push_back(std::move(token));
            token.clear();
        } else {
            token.push_back(c);
        }
    }
    if (!token.empty())
        out.push_back(std::move(token));
    return out;
}

double
parseNumber(const std::string &text, std::string_view origin,
            unsigned line)
{
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || value < 0)
        planError(origin, line, "expected a non-negative number");
    return value;
}

/** "key=value" -> value, checking the key; fatal when absent. */
double
requireField(const std::vector<std::string> &tokens,
             std::string_view key, std::string_view origin,
             unsigned line)
{
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &t = tokens[i];
        std::size_t eq = t.find('=');
        if (eq != std::string::npos &&
            std::string_view(t).substr(0, eq) == key)
            return parseNumber(t.substr(eq + 1), origin, line);
    }
    afa::sim::fatal("fault plan %.*s:%u: missing %.*s=",
                    static_cast<int>(origin.size()), origin.data(),
                    line, static_cast<int>(key.size()), key.data());
}

double
optionalField(const std::vector<std::string> &tokens,
              std::string_view key, double fallback,
              std::string_view origin, unsigned line)
{
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &t = tokens[i];
        std::size_t eq = t.find('=');
        if (eq != std::string::npos &&
            std::string_view(t).substr(0, eq) == key)
            return parseNumber(t.substr(eq + 1), origin, line);
    }
    return fallback;
}

} // namespace

FaultPlan
FaultPlan::parseText(std::string_view text, std::string_view origin)
{
    FaultPlan plan;
    std::istringstream in{std::string(text)};
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &verb = tokens[0];
        if (verb == "timeout_ms") {
            if (tokens.size() != 2)
                planError(origin, lineno, "timeout_ms takes one value");
            plan.nvmeTimeout =
                afa::sim::msec(parseNumber(tokens[1], origin, lineno));
        } else if (verb == "max_retries") {
            if (tokens.size() != 2)
                planError(origin, lineno,
                          "max_retries takes one value");
            plan.maxRetries = static_cast<unsigned>(
                parseNumber(tokens[1], origin, lineno));
        } else if (verb == "retry_backoff_ms") {
            if (tokens.size() != 2)
                planError(origin, lineno,
                          "retry_backoff_ms takes one value");
            plan.retryBackoff =
                afa::sim::msec(parseNumber(tokens[1], origin, lineno));
        } else if (verb == "limp" || verb == "dropout" ||
                   verb == "link_error" || verb == "ctrl_stall") {
            FaultEvent ev;
            ev.kind = verb == "limp"       ? FaultKind::Limp
                    : verb == "dropout"    ? FaultKind::Dropout
                    : verb == "link_error" ? FaultKind::LinkError
                                           : FaultKind::CtrlStall;
            ev.ssd = static_cast<unsigned>(
                requireField(tokens, "ssd", origin, lineno));
            ev.at = afa::sim::msec(
                requireField(tokens, "at_ms", origin, lineno));
            ev.duration = afa::sim::msec(
                requireField(tokens, "dur_ms", origin, lineno));
            if (ev.kind == FaultKind::Limp) {
                ev.factor = requireField(tokens, "factor", origin,
                                         lineno);
                if (ev.factor < 1.0)
                    planError(origin, lineno, "limp factor must be >= 1");
            }
            if (ev.kind == FaultKind::LinkError) {
                ev.rate = requireField(tokens, "rate", origin, lineno);
                if (ev.rate >= 1.0)
                    planError(origin, lineno,
                              "link_error rate must be < 1");
            }
            plan.events.push_back(ev);
        } else {
            planError(origin, lineno, "unknown directive");
        }
    }
    // Deterministic application order regardless of spec order.
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return plan;
}

FaultPlan
FaultPlan::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        afa::sim::fatal("fault plan: cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return parseText(text.str(), path);
}

std::string
FaultPlan::summary() const
{
    std::string out = afa::sim::strfmt(
        "fault plan: %zu event(s), timeout %.1f ms, "
        "%u retries, backoff %.1f ms\n",
        events.size(), afa::sim::toMsec(nvmeTimeout), maxRetries,
        afa::sim::toMsec(retryBackoff));
    for (const FaultEvent &ev : events) {
        out += afa::sim::strfmt(
            "  %-10s ssd%u  [%.1f, %.1f) ms", faultKindName(ev.kind),
            ev.ssd, afa::sim::toMsec(ev.at),
            afa::sim::toMsec(ev.at + ev.duration));
        if (ev.kind == FaultKind::Limp)
            out += afa::sim::strfmt("  factor=%.1f", ev.factor);
        if (ev.kind == FaultKind::LinkError)
            out += afa::sim::strfmt("  rate=%.3f", ev.rate);
        out += "\n";
    }
    return out;
}

} // namespace afa::fault
