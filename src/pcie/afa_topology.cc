#include "pcie/afa_topology.hh"

#include "sim/logging.hh"

namespace afa::pcie {

AfaTopology
buildAfaTopology(Fabric &fabric, const AfaTopologyParams &params)
{
    if (params.ssds == 0)
        afa::sim::fatal("AFA topology: need at least one SSD");
    if (params.ssdsPerCarrier == 0 || params.carriersPerLeaf == 0)
        afa::sim::fatal("AFA topology: carrier geometry must be >= 1");

    AfaTopology topo;
    topo.host = fabric.addEndpoint("host");
    topo.rootSwitch =
        fabric.addSwitch("sw.root", params.switchForwardLatency);
    fabric.connect(topo.host, topo.rootSwitch,
                   LinkParams{params.uplinkLanes, Gen::Gen3,
                              params.linkPropagation});

    unsigned carriers = (params.ssds + params.ssdsPerCarrier - 1) /
        params.ssdsPerCarrier;
    unsigned leaves = (carriers + params.carriersPerLeaf - 1) /
        params.carriersPerLeaf;

    for (unsigned l = 0; l < leaves; ++l) {
        NodeId leaf = fabric.addSwitch(
            afa::sim::strfmt("sw.leaf%u", l),
            params.switchForwardLatency);
        fabric.connect(topo.rootSwitch, leaf,
                       LinkParams{params.leafLanes, Gen::Gen3,
                                  params.linkPropagation});
        topo.leafSwitches.push_back(leaf);
    }

    for (unsigned c = 0; c < carriers; ++c) {
        NodeId leaf = topo.leafSwitches[c / params.carriersPerLeaf];
        NodeId carrier = fabric.addSwitch(
            afa::sim::strfmt("sw.carrier%u", c),
            params.switchForwardLatency);
        fabric.connect(leaf, carrier,
                       LinkParams{params.carrierLanes, Gen::Gen3,
                                  params.linkPropagation});
        topo.carrierSwitches.push_back(carrier);
    }

    for (unsigned s = 0; s < params.ssds; ++s) {
        NodeId carrier = topo.carrierSwitches[s / params.ssdsPerCarrier];
        NodeId ssd =
            fabric.addEndpoint(afa::sim::strfmt("nvme%u", s));
        fabric.connect(carrier, ssd,
                       LinkParams{params.ssdLanes, Gen::Gen3,
                                  params.linkPropagation});
        topo.ssds.push_back(ssd);
    }

    fabric.finalize();
    return topo;
}

} // namespace afa::pcie
