/**
 * @file
 * The PCIe switch fabric: nodes (endpoints and store-and-forward
 * switches) joined by Links, with shortest-path routing.
 *
 * A send() walks the precomputed route hop by hop; each hop is one
 * simulator event, so contention on any link or switch naturally
 * delays everything behind it.
 */

#ifndef AFA_PCIE_FABRIC_HH
#define AFA_PCIE_FABRIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pcie/link.hh"
#include "sim/sim_object.hh"

namespace afa::pcie {

/** Identifies a fabric node (endpoint or switch). */
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = 0xffffffffu;

/** Fabric-wide traffic statistics. */
struct FabricStats
{
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    Tick totalQueueDelay = 0;
};

/**
 * A tree/mesh of PCIe switches and endpoints.
 *
 * Build with addEndpoint()/addSwitch()/connect(), then finalize()
 * (computes routes), then send().
 */
class Fabric : public afa::sim::SimObject
{
  public:
    Fabric(afa::sim::Simulator &simulator, std::string fabric_name);

    /** Add a leaf device (host root complex or SSD endpoint). */
    NodeId addEndpoint(const std::string &node_name);

    /**
     * Add a store-and-forward switch with the given per-packet
     * forwarding latency.
     */
    NodeId addSwitch(const std::string &node_name, Tick forward_latency);

    /**
     * Join two nodes with a bidirectional link (one Link object per
     * direction, so each direction serialises independently, like the
     * separate TX/RX lanes of real PCIe).
     */
    void connect(NodeId a, NodeId b, const LinkParams &params);

    /** Compute routing tables. Must be called before send(). */
    void finalize();

    /** True once finalize() has run. */
    bool finalized() const { return isFinalized; }

    /**
     * Send @p bytes from @p src to @p dst; @p on_delivered fires when
     * the last byte has arrived at @p dst.
     */
    void send(NodeId src, NodeId dst, std::uint32_t bytes,
              afa::sim::EventFn on_delivered);

    /**
     * Estimated unloaded delivery latency (no queueing) for planning
     * and tests.
     */
    Tick unloadedLatency(NodeId src, NodeId dst,
                         std::uint32_t bytes) const;

    /** Number of link hops between two nodes. */
    unsigned hopCount(NodeId src, NodeId dst) const;

    /** Node count. */
    std::size_t nodes() const { return nodeInfo.size(); }

    /** Directed link between adjacent nodes (for stats); null if none. */
    const Link *linkBetween(NodeId from, NodeId to) const;

    /** Fabric-wide stats. */
    const FabricStats &stats() const { return fabricStats; }

    /** Name of a node. */
    const std::string &nodeName(NodeId id) const;

  private:
    struct NodeInfo
    {
        std::string name;
        bool isSwitch = false;
        Tick forwardLatency = 0;
        // Adjacency: (neighbour, index into links of the directed
        // link this->neighbour).
        std::vector<std::pair<NodeId, std::size_t>> out;
    };

    std::vector<NodeInfo> nodeInfo;
    std::vector<Link> links;
    // nextHop[src][dst] = neighbour on the shortest path.
    std::vector<std::vector<NodeId>> nextHop;
    bool isFinalized;
    FabricStats fabricStats;

    void hop(NodeId at, NodeId dst, std::uint32_t bytes,
             afa::sim::EventFn on_delivered);
    std::size_t linkIndex(NodeId from, NodeId to) const;
    void checkNode(NodeId id) const;
};

} // namespace afa::pcie

#endif // AFA_PCIE_FABRIC_HH
