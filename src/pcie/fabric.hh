/**
 * @file
 * The PCIe switch fabric: nodes (endpoints and store-and-forward
 * switches) joined by Links, with shortest-path routing.
 *
 * finalize() precompiles, per (src, dst), the full hop sequence as
 * packed link-index + forward-latency records. When every link on the
 * path is free at the packet's computed entry time (the dominant case
 * at QD1), send() advances all link busy cursors in one pass and
 * schedules a single delivery event at the arrival tick. From the
 * first contended link onward it falls back to the per-hop event
 * model, so contention on any link or switch naturally delays
 * everything behind it, tick-for-tick as before.
 *
 * Reserving downstream links at *future* entry ticks is only exact
 * while nothing reaches those links earlier; every future reservation
 * is therefore recorded and revocable. A packet that enters a link
 * ahead of a pending reservation's start displaces the reservation's
 * owner: the owner's scheduled event is cancelled, its unstarted
 * occupancy rolled back (cascading to reservations queued behind it),
 * and the owner re-enters the per-hop model at its recorded entry
 * tick — which is exactly its reference-model arrival, so link FIFO
 * order always equals arrival order. See DESIGN.md "Events-per-IO
 * budget" for the full equivalence contract.
 */

#ifndef AFA_PCIE_FABRIC_HH
#define AFA_PCIE_FABRIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hh"
#include "pcie/link.hh"
#include "sim/sim_object.hh"

namespace afa::obs {
class SpanLog;
} // namespace afa::obs

namespace afa::pcie {

/** Identifies a fabric node (endpoint or switch). */
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = 0xffffffffu;

/** Fabric-wide traffic statistics. */
struct FabricStats
{
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    Tick totalQueueDelay = 0;
    /** Packets delivered by the single-event uncontended fast path.
     *  Invariant across --shards: every walk executes at the same
     *  tick in the same canonical order at any shard count (endpoint
     *  sends are shipped one lookahead after their backdated entry in
     *  serial runs too), so the fast/fallback decision sees the same
     *  fabric state everywhere. */
    std::uint64_t fastPathPackets = 0;
    /** Packets that took the per-hop event model (contention hit, or
     *  the fast path disabled). Self-sends count for neither. */
    std::uint64_t fallbackPackets = 0;
    /** Transfers repeated because an injected link fault corrupted
     *  them (each replay re-serialises the full payload). */
    std::uint64_t linkReplays = 0;
};

/**
 * A tree/mesh of PCIe switches and endpoints.
 *
 * Build with addEndpoint()/addSwitch()/connect(), then finalize()
 * (computes routes), then send().
 */
class Fabric : public afa::sim::SimObject
{
  public:
    Fabric(afa::sim::Simulator &simulator, std::string fabric_name);

    /** Add a leaf device (host root complex or SSD endpoint). */
    NodeId addEndpoint(const std::string &node_name);

    /**
     * Add a store-and-forward switch with the given per-packet
     * forwarding latency.
     */
    NodeId addSwitch(const std::string &node_name, Tick forward_latency);

    /**
     * Join two nodes with a bidirectional link (one Link object per
     * direction, so each direction serialises independently, like the
     * separate TX/RX lanes of real PCIe).
     */
    void connect(NodeId a, NodeId b, const LinkParams &params);

    /** Compute routing tables. Must be called before send(). */
    void finalize();

    /** True once finalize() has run. */
    bool finalized() const { return isFinalized; }

    /**
     * Send @p bytes from @p src to @p dst; @p on_delivered fires when
     * the last byte has arrived at @p dst.
     */
    void send(NodeId src, NodeId dst, std::uint32_t bytes,
              afa::sim::EventFn on_delivered);

    /**
     * send() that also records an obs transit span [send, deliver]
     * for IO @p io on @p track. The span's flags say how the packet
     * travelled: self-send, single-event fast path, or per-hop
     * fallback. No-op wrapper around send() when the span log is
     * absent, the pcie category is disabled, or @p io is 0.
     *
     * Fast-path spans are committed at send time with the computed
     * arrival tick; in the rare case the packet is later displaced
     * into the per-hop model its true delivery moves later and the
     * recorded span keeps the optimistic end (the *simulation* stays
     * exact — only this telemetry record is approximate).
     */
    void sendSpanned(NodeId src, NodeId dst, std::uint32_t bytes,
                     std::uint64_t io, std::uint16_t track,
                     afa::obs::Stage stage,
                     afa::sim::EventFn on_delivered);

    /**
     * sendSpanned() with an explicit entry tick @p enter <= now().
     *
     * Sharded execution ships a device's outbound send to the
     * fabric's shard with one lookahead window of delay; this entry
     * point lets the shipped send compute link entry, queueing, and
     * arrival from the tick the device issued it, so every horizon
     * mutation and delivery tick is bit-identical to the serial
     * schedule. Safe because (a) endpoint edge links carry no
     * through-traffic and no reservations ever cover a route's first
     * hop, so nothing can have touched the link in (enter, now()],
     * and (b) every computed event time is >= enter + propagation >=
     * now(), so nothing schedules into the past.
     */
    void sendSpannedAt(Tick enter, NodeId src, NodeId dst,
                       std::uint32_t bytes, std::uint64_t io,
                       std::uint16_t track, afa::obs::Stage stage,
                       afa::sim::EventFn on_delivered);

    /**
     * Declare that @p node's SimObjects execute on @p shard (default
     * 0, the fabric's own shard). Final delivery callbacks for a
     * remote node are posted through the simulator's inter-shard
     * mailbox; all fabric state stays on the fabric's shard.
     */
    void setNodeShard(NodeId node, unsigned shard);

    /** Shard a node's delivery callbacks execute on. */
    unsigned
    nodeShardOf(NodeId node) const
    {
        return node < nodeShardMap.size() ? nodeShardMap[node] : 0;
    }

    /**
     * Declare @p node an endpoint whose deliveries (and outbound
     * ships) use the canonical same-tick ordering band 2 + node (see
     * Simulator::scheduleOnShard()). The system model marks every SSD
     * endpoint — in serial runs too, so the same-tick order of
     * deliveries is the same deterministic function of the model at
     * any shard count. The host stays unmarked: host-bound deliveries
     * are always fabric-local and keep plain FIFO order.
     */
    void markEndpoint(NodeId node);

    /** The delivery ordering band of @p node (0 = plain FIFO). */
    std::uint32_t
    deliveryOrder(NodeId node) const
    {
        return node < nodeOrder.size() ? nodeOrder[node] : 0;
    }

    /**
     * Minimum propagation delay over all links (0 with no links) —
     * the conservative lookahead horizon for sharded execution: no
     * cross-fabric effect travels faster than one link flight.
     */
    afa::sim::TickDelta minPropagation() const;

    /** Attach (or detach, with nullptr) the span log. */
    void setSpanLog(afa::obs::SpanLog *log) { spanLog = log; }

    /**
     * Estimated unloaded delivery latency (no queueing) for planning
     * and tests.
     */
    Tick unloadedLatency(NodeId src, NodeId dst,
                         std::uint32_t bytes) const;

    /** Number of link hops between two nodes. */
    unsigned hopCount(NodeId src, NodeId dst) const;

    /** Node count. */
    std::size_t nodes() const { return nodeInfo.size(); }

    /** Directed link between adjacent nodes (for stats); null if none. */
    const Link *linkBetween(NodeId from, NodeId to) const;

    /** Number of directed links (two per connect()). */
    std::size_t linkCount() const { return links.size(); }

    /** Directed link by construction index (for stats iteration). */
    const Link &linkAt(std::size_t index) const { return links[index]; }

    /** Fabric-wide stats. */
    const FabricStats &stats() const { return fabricStats; }

    /**
     * Enable/disable the uncontended single-event fast path (on by
     * default). Disabling forces every packet through the per-hop
     * event model — the reference behaviour the fast path must match
     * tick-for-tick; used by the differential tests.
     */
    void setFastPath(bool enabled) { fastPathEnabled = enabled; }

    /** True while the uncontended fast path is enabled. */
    bool fastPath() const { return fastPathEnabled; }

    /**
     * The random stream link-fault replay coin flips derive from.
     * Must be set before any endpoint fault activates; the
     * FaultEngine passes its own plan-seeded stream so faulted runs
     * replay identically at any --jobs (detlint: fault-rng). Each
     * faulted link forks a private child stream by link index when it
     * is armed, so the flip a packet sees depends only on its link
     * and its position in that link's (model-deterministic) packet
     * order — never on how hop events interleave across links, which
     * shifts with --shards.
     */
    void setFaultRng(afa::sim::Rng *rng) { faultRng = rng; }

    /**
     * Inject (rate > 0) or clear (rate == 0) a transient error rate on
     * every directed link adjacent to @p endpoint: each transfer on a
     * faulted link is independently corrupted with probability @p rate
     * and replayed in full, possibly repeatedly. Routes crossing a
     * faulted link leave the single-event fast path and take the
     * per-hop reference model, so replay delays propagate exactly
     * (PR 3 contract); with no faulted links the only added send()
     * cost is one integer test.
     */
    void setEndpointFault(NodeId endpoint, double rate);

    /** Remove the fault on @p endpoint (setEndpointFault(.., 0)). */
    void clearEndpointFault(NodeId endpoint)
    {
        setEndpointFault(endpoint, 0.0);
    }

    /** Name of a node. */
    const std::string &nodeName(NodeId id) const;

  private:
    struct NodeInfo
    {
        std::string name;
        bool isSwitch = false;
        Tick forwardLatency = 0;
        // Adjacency: (neighbour, index into links of the directed
        // link this->neighbour).
        std::vector<std::pair<NodeId, std::size_t>> out;
    };

    /** One precompiled hop of a (src, dst) route. */
    struct PathHop
    {
        std::uint32_t link;  ///< index into links
        NodeId to;           ///< node at the far end of the link
        Tick forwardAfter;   ///< store-and-forward latency charged
                             ///< after this hop (0 on the final hop)
    };

    /**
     * One revocable future-entry reservation on a link, placed by the
     * fast-path walk for every hop past the first. Entries on a link
     * are sorted by start (occupy() requires freeAt(), so each new
     * reservation begins at or after the previous one's end); entries
     * whose start has passed are expired garbage, pruned lazily.
     */
    struct Reservation
    {
        Tick start;          ///< owner starts serialising (= its
                             ///< reference-model arrival at the link)
        Tick prevHorizon;    ///< link busy horizon just before the
                             ///< occupy(), for rollback
        std::uint32_t rec;   ///< owning FlightRecord index
        std::uint32_t hop;   ///< hop position on the owner's route
                             ///< (>= 1; hop 0 starts at send time and
                             ///< can never be displaced)
    };

    /**
     * Context a packet carries from send() to its delivery point:
     * whether it holds the fast-path gate (per-hop chain mode) and
     * the span identity to commit at delivery. Replaces the old
     * closure-wrapping (chainWrap): under sharded execution the
     * delivery callback may cross to another shard while this
     * bookkeeping must run on the fabric's shard, so it travels as
     * plain data instead of inside the callback.
     */
    struct DeliverCtx
    {
        bool chained = false;   ///< holds the fast-path gate until
                                ///< finishChained() at delivery
        std::uint64_t io = 0;   ///< span identity (0 = no span)
        Tick begin = 0;
        std::uint16_t track = 0;
        afa::obs::Stage stage = afa::obs::Stage::FabricSubmit;
    };

    /**
     * An in-flight send whose future link occupancy is written into
     * the busy horizons: a full fast-path walk awaiting its single
     * delivery event, or the walked prefix of a mid-path fallback
     * awaiting its chain continuation event. Holding the event handle
     * and the final callback makes the packet displaceable — if
     * another packet arrives at a reserved link before the reservation
     * starts, the event is cancelled, the unstarted reservations are
     * rolled back, and the packet re-enters the per-hop model at its
     * recorded entry tick.
     */
    struct FlightRecord
    {
        afa::sim::EventFn cb;       ///< the caller's on_delivered
                                    ///< (empty when shipped via xev)
        afa::sim::EventHandle ev;   ///< delivery or continuation event
        afa::sim::EventHandle xev;  ///< cross-shard delivery post for
                                    ///< a full walk to a remote node;
                                    ///< reclaimed on displacement
        DeliverCtx ctx;             ///< chain/span context
        std::uint32_t pathFirst = 0;///< base index into pathHops
        std::uint32_t hopsWalked = 0;///< links occupied; reservations
                                    ///< cover hops 1..hopsWalked-1
        NodeId dst = kInvalidNode;
        std::uint32_t bytes = 0;
        bool fullWalk = false;      ///< ev delivers (else it re-enters
                                    ///< hop() after the walked prefix)
        bool active = false;
        // Scratch used only inside displaceEarlier():
        bool displaced = false;
        std::uint32_t displacedHop = 0;
        Tick displacedStart = 0;
    };

    static constexpr std::uint32_t kNoFlight = 0xffffffffu;

    std::vector<NodeInfo> nodeInfo;
    std::vector<Link> links;
    // Dense n*n next-hop table: nextHopFlat[src * n + dst] is the
    // neighbour on the shortest path (kInvalidNode if unreachable).
    std::vector<NodeId> nextHopFlat;
    // Precompiled routes: pathHops[pathOffset[src * n + dst] ..
    // pathOffset[src * n + dst + 1]) is the full hop sequence.
    std::vector<PathHop> pathHops;
    std::vector<std::uint32_t> pathOffset;
    // Pending future-entry reservations per directed link (parallel to
    // links; sized in finalize()). Almost always empty or tiny: an
    // entry lives from the owning send() until it starts, is displaced,
    // or the owner's event completes and prunes it.
    std::vector<std::vector<Reservation>> linkResv;
    std::vector<FlightRecord> flights;
    std::vector<std::uint32_t> freeFlights;
    bool isFinalized;
    bool fastPathEnabled = true;
    /**
     * Packets currently traversing via per-hop chain events. Their
     * future link occupancy is NOT yet reflected in the link busy
     * horizons, so while any are in flight the fast path must not
     * reserve ahead of them (it could steal a FIFO slot the reference
     * model would have given the chain packet). Fast-path packets by
     * contrast reserve their whole path at send time, so horizons
     * fully describe them; if traffic nevertheless reaches a reserved
     * link first, displaceEarlier() revokes the reservation, keeping
     * FIFO order equal to arrival order (see fabric.cc).
     */
    std::uint64_t chainInFlight = 0;
    // Injected per-link fault state (parallel to links; sized in
    // finalize()). faultedLinks counts entries with rate > 0 so the
    // healthy-path cost of the fault hooks is a single integer test.
    std::vector<double> linkFaultRate;
    // Per-link replay streams, forked from the FaultEngine's stream
    // by link index when a fault is armed (see setLinkFaultRate()).
    std::vector<afa::sim::Rng> linkFaultStream;
    unsigned faultedLinks = 0;
    // Shard each node's delivery callbacks run on (empty = all 0).
    std::vector<unsigned> nodeShardMap;
    // Delivery ordering band per node (empty/0 = plain FIFO order).
    std::vector<std::uint32_t> nodeOrder;
    afa::sim::Rng *faultRng = nullptr;
    FabricStats fabricStats;
    afa::obs::SpanLog *spanLog = nullptr;
    /**
     * Span context of the sendSpanned() currently executing (io 0 =
     * none). Valid only for the synchronous extent of send(): the
     * commit points (self-send, fast-path walk, chainWrap()) read it
     * to stamp their span records. displaceEarlier() zeroes it while
     * re-wrapping *other* packets' callbacks so a displaced packet
     * never inherits the displacing sender's identity.
     */
    std::uint64_t curIo = 0;
    Tick curBegin = 0;
    std::uint16_t curTrack = 0;
    afa::obs::Stage curStage = afa::obs::Stage::FabricSubmit;

    std::size_t
    pathIndex(NodeId src, NodeId dst) const
    {
        return static_cast<std::size_t>(src) * nodeInfo.size() + dst;
    }

    void sendAt(Tick enter, NodeId src, NodeId dst,
                std::uint32_t bytes, afa::sim::EventFn on_delivered);
    afa::sim::EventHandle atInternal(Tick when, afa::sim::EventFn fn);
    void hop(NodeId at, NodeId dst, std::uint32_t bytes,
             afa::sim::EventFn on_delivered, DeliverCtx ctx,
             Tick enter);
    void setLinkFaultRate(std::size_t link_idx, double rate);
    bool routeFaulted(std::uint32_t first, std::uint32_t last) const;
    DeliverCtx beginChain();
    void finishChained(const DeliverCtx &ctx);
    void scheduleDelivery(Tick arrive, NodeId dst,
                          afa::sim::EventFn cb, const DeliverCtx &ctx);
    std::uint32_t allocFlight(std::uint32_t path_first, NodeId dst,
                              std::uint32_t bytes);
    void freeFlight(std::uint32_t idx);
    void completeFlight(std::uint32_t idx);
    void pruneExpired(std::size_t link_idx);
    void displaceEarlier(std::size_t link_idx, Tick enter);
    void cutReservations(std::size_t link_idx, std::size_t pos,
                         std::vector<std::uint32_t> &work,
                         std::vector<std::uint32_t> &all);
    std::size_t linkIndex(NodeId from, NodeId to) const;
    void checkNode(NodeId id) const;
    [[noreturn]] void fatalNoRoute(NodeId at, NodeId dst) const;
};

} // namespace afa::pcie

#endif // AFA_PCIE_FABRIC_HH
