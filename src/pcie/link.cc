#include "pcie/link.hh"

#include <algorithm>
#include <cassert>

#include "sim/logging.hh"

namespace afa::pcie {

double
LinkParams::bytesPerSec()  const
{
    double per_lane = 0.0;
    switch (gen) {
      case Gen::Gen3:
        per_lane = 800e6; // effective, see header
        break;
    }
    return per_lane * lanes;
}

Link::Link(std::string link_name, const LinkParams &params)
    : linkName(std::move(link_name)), linkParams(params),
      cachedBytesPerSec(params.bytesPerSec()), busyHorizon(0),
      totalBytes(0), totalTransfers(0), totalBusy(0), totalQueueDelay(0)
{
    if (params.lanes == 0 || params.lanes > 16)
        afa::sim::fatal("link %s: lane count %u out of [1,16]",
                        linkName.c_str(), params.lanes);
}

Tick
Link::serialization(Bytes bytes) const
{
    return afa::sim::transferTicks(bytes, cachedBytesPerSec);
}

Tick
Link::transfer(Tick now, Bytes bytes)
{
    Tick start = std::max(now, busyHorizon);
    Tick ser = serialization(bytes);
    busyHorizon = start + ser;
    totalBytes += bytes.count();
    ++totalTransfers;
    totalBusy += ser;
    totalQueueDelay += start - now;
    return busyHorizon + linkParams.propagation;
}

Tick
Link::occupy(Tick entry, Bytes bytes)
{
    assert(freeAt(entry) && "occupy() on a busy link");
    return transfer(entry, bytes);
}

void
Link::unoccupy(Tick prev_horizon, Bytes bytes)
{
    assert(prev_horizon <= busyHorizon &&
           "unoccupy() would advance the busy horizon");
    Tick ser = serialization(bytes);
    assert(totalTransfers > 0 && totalBytes >= bytes.count() &&
           totalBusy >= ser && "unoccupy() without matching occupy()");
    busyHorizon = prev_horizon;
    totalBytes -= bytes.count();
    --totalTransfers;
    totalBusy -= ser;
}

} // namespace afa::pcie
