#include "pcie/fabric.hh"

#include <deque>

#include "sim/logging.hh"

namespace afa::pcie {

using afa::sim::EventFn;
using afa::sim::Simulator;

Fabric::Fabric(Simulator &simulator, std::string fabric_name)
    : SimObject(simulator, std::move(fabric_name)), isFinalized(false)
{
}

NodeId
Fabric::addEndpoint(const std::string &node_name)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot add nodes after finalize()",
                        name().c_str());
    nodeInfo.push_back(NodeInfo{node_name, false, 0, {}});
    return static_cast<NodeId>(nodeInfo.size() - 1);
}

NodeId
Fabric::addSwitch(const std::string &node_name, Tick forward_latency)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot add nodes after finalize()",
                        name().c_str());
    nodeInfo.push_back(NodeInfo{node_name, true, forward_latency, {}});
    return static_cast<NodeId>(nodeInfo.size() - 1);
}

void
Fabric::checkNode(NodeId id) const
{
    if (id >= nodeInfo.size())
        afa::sim::panic("fabric %s: bad node id %u", name().c_str(), id);
}

void
Fabric::connect(NodeId a, NodeId b, const LinkParams &params)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot connect after finalize()",
                        name().c_str());
    checkNode(a);
    checkNode(b);
    if (a == b)
        afa::sim::fatal("fabric %s: self-link on node %u",
                        name().c_str(), a);
    links.emplace_back(nodeInfo[a].name + "->" + nodeInfo[b].name,
                       params);
    nodeInfo[a].out.emplace_back(b, links.size() - 1);
    links.emplace_back(nodeInfo[b].name + "->" + nodeInfo[a].name,
                       params);
    nodeInfo[b].out.emplace_back(a, links.size() - 1);
}

void
Fabric::finalize()
{
    const std::size_t n = nodeInfo.size();
    nextHop.assign(n, std::vector<NodeId>(n, kInvalidNode));
    // BFS from every destination, recording each node's parent-ward
    // neighbour (first hop toward dst).
    for (NodeId dst = 0; dst < n; ++dst) {
        std::vector<NodeId> toward(n, kInvalidNode);
        std::deque<NodeId> queue{dst};
        std::vector<bool> seen(n, false);
        seen[dst] = true;
        while (!queue.empty()) {
            NodeId cur = queue.front();
            queue.pop_front();
            for (const auto &[nbr, li] : nodeInfo[cur].out) {
                (void)li;
                if (seen[nbr])
                    continue;
                seen[nbr] = true;
                toward[nbr] = cur;
                queue.push_back(nbr);
            }
        }
        for (NodeId src = 0; src < n; ++src)
            nextHop[src][dst] = toward[src];
    }
    isFinalized = true;
}

std::size_t
Fabric::linkIndex(NodeId from, NodeId to) const
{
    for (const auto &[nbr, li] : nodeInfo[from].out)
        if (nbr == to)
            return li;
    afa::sim::panic("fabric %s: no link %s->%s", name().c_str(),
                    nodeInfo[from].name.c_str(),
                    nodeInfo[to].name.c_str());
}

const Link *
Fabric::linkBetween(NodeId from, NodeId to) const
{
    for (const auto &[nbr, li] : nodeInfo[from].out)
        if (nbr == to)
            return &links[li];
    return nullptr;
}

const std::string &
Fabric::nodeName(NodeId id) const
{
    checkNode(id);
    return nodeInfo[id].name;
}

void
Fabric::hop(NodeId at_node, NodeId dst, std::uint32_t bytes,
            EventFn on_delivered)
{
    NodeId next = nextHop[at_node][dst];
    if (next == kInvalidNode)
        afa::sim::fatal("fabric %s: no route %s -> %s", name().c_str(),
                        nodeInfo[at_node].name.c_str(),
                        nodeInfo[dst].name.c_str());
    Link &link = links[linkIndex(at_node, next)];
    Tick enter = now();
    Tick arrive = link.transfer(enter, bytes);
    fabricStats.totalQueueDelay += (arrive - enter) -
        link.serialization(bytes) - link.params().propagation;
    if (next == dst) {
        at(arrive, std::move(on_delivered));
        return;
    }
    Tick forwarded = arrive + nodeInfo[next].forwardLatency;
    at(forwarded,
       [this, next, dst, bytes, cb = std::move(on_delivered)]() mutable {
           hop(next, dst, bytes, std::move(cb));
       });
}

void
Fabric::send(NodeId src, NodeId dst, std::uint32_t bytes,
             EventFn on_delivered)
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: send before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    ++fabricStats.packets;
    fabricStats.bytes += bytes;
    if (src == dst) {
        after(0, std::move(on_delivered));
        return;
    }
    hop(src, dst, bytes, std::move(on_delivered));
}

Tick
Fabric::unloadedLatency(NodeId src, NodeId dst,
                        std::uint32_t bytes) const
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: unloadedLatency before finalize()",
                        name().c_str());
    Tick total = 0;
    NodeId at_node = src;
    while (at_node != dst) {
        NodeId next = nextHop[at_node][dst];
        if (next == kInvalidNode)
            afa::sim::fatal("fabric %s: no route %s -> %s",
                            name().c_str(),
                            nodeInfo[at_node].name.c_str(),
                            nodeInfo[dst].name.c_str());
        const Link &link = links[linkIndex(at_node, next)];
        total += link.serialization(bytes) + link.params().propagation;
        if (next != dst)
            total += nodeInfo[next].forwardLatency;
        at_node = next;
    }
    return total;
}

unsigned
Fabric::hopCount(NodeId src, NodeId dst) const
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: hopCount before finalize()",
                        name().c_str());
    unsigned hops = 0;
    NodeId at_node = src;
    while (at_node != dst) {
        NodeId next = nextHop[at_node][dst];
        if (next == kInvalidNode)
            return 0;
        ++hops;
        at_node = next;
    }
    return hops;
}

} // namespace afa::pcie
