#include "pcie/fabric.hh"

#include <cassert>
#include <deque>

#include "sim/logging.hh"

namespace afa::pcie {

using afa::sim::EventFn;
using afa::sim::Simulator;

Fabric::Fabric(Simulator &simulator, std::string fabric_name)
    : SimObject(simulator, std::move(fabric_name)), isFinalized(false)
{
}

NodeId
Fabric::addEndpoint(const std::string &node_name)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot add nodes after finalize()",
                        name().c_str());
    nodeInfo.push_back(NodeInfo{node_name, false, 0, {}});
    return static_cast<NodeId>(nodeInfo.size() - 1);
}

NodeId
Fabric::addSwitch(const std::string &node_name, Tick forward_latency)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot add nodes after finalize()",
                        name().c_str());
    nodeInfo.push_back(NodeInfo{node_name, true, forward_latency, {}});
    return static_cast<NodeId>(nodeInfo.size() - 1);
}

void
Fabric::checkNode(NodeId id) const
{
    if (id >= nodeInfo.size())
        afa::sim::panic("fabric %s: bad node id %u", name().c_str(), id);
}

void
Fabric::fatalNoRoute(NodeId at_node, NodeId dst) const
{
    afa::sim::fatal("fabric %s: no route %s -> %s", name().c_str(),
                    nodeInfo[at_node].name.c_str(),
                    nodeInfo[dst].name.c_str());
}

void
Fabric::connect(NodeId a, NodeId b, const LinkParams &params)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot connect after finalize()",
                        name().c_str());
    checkNode(a);
    checkNode(b);
    if (a == b)
        afa::sim::fatal("fabric %s: self-link on node %u",
                        name().c_str(), a);
    links.emplace_back(nodeInfo[a].name + "->" + nodeInfo[b].name,
                       params);
    nodeInfo[a].out.emplace_back(b, links.size() - 1);
    links.emplace_back(nodeInfo[b].name + "->" + nodeInfo[a].name,
                       params);
    nodeInfo[b].out.emplace_back(a, links.size() - 1);
}

void
Fabric::finalize()
{
    const std::size_t n = nodeInfo.size();
    nextHopFlat.assign(n * n, kInvalidNode);
    // BFS from every destination, recording each node's parent-ward
    // neighbour (first hop toward dst).
    for (NodeId dst = 0; dst < n; ++dst) {
        std::vector<NodeId> toward(n, kInvalidNode);
        std::deque<NodeId> queue{dst};
        std::vector<bool> seen(n, false);
        seen[dst] = true;
        while (!queue.empty()) {
            NodeId cur = queue.front();
            queue.pop_front();
            for (const auto &[nbr, li] : nodeInfo[cur].out) {
                (void)li;
                if (seen[nbr])
                    continue;
                seen[nbr] = true;
                toward[nbr] = cur;
                queue.push_back(nbr);
            }
        }
        for (NodeId src = 0; src < n; ++src)
            nextHopFlat[pathIndex(src, dst)] = toward[src];
    }
    // Precompile every route into packed hop records, so send() never
    // walks adjacency lists or the next-hop table per packet.
    pathHops.clear();
    pathOffset.assign(n * n + 1, 0);
    for (NodeId src = 0; src < n; ++src) {
        for (NodeId dst = 0; dst < n; ++dst) {
            if (src != dst) {
                NodeId at_node = src;
                while (at_node != dst) {
                    NodeId next = nextHopFlat[pathIndex(at_node, dst)];
                    if (next == kInvalidNode)
                        break; // unreachable: leave the route empty
                    Tick fwd = next == dst
                        ? 0 : nodeInfo[next].forwardLatency;
                    pathHops.push_back(PathHop{
                        static_cast<std::uint32_t>(
                            linkIndex(at_node, next)),
                        next, fwd});
                    at_node = next;
                }
            }
            pathOffset[pathIndex(src, dst) + 1] =
                static_cast<std::uint32_t>(pathHops.size());
        }
    }
    isFinalized = true;
}

std::size_t
Fabric::linkIndex(NodeId from, NodeId to) const
{
    for (const auto &[nbr, li] : nodeInfo[from].out)
        if (nbr == to)
            return li;
    afa::sim::panic("fabric %s: no link %s->%s", name().c_str(),
                    nodeInfo[from].name.c_str(),
                    nodeInfo[to].name.c_str());
}

const Link *
Fabric::linkBetween(NodeId from, NodeId to) const
{
    for (const auto &[nbr, li] : nodeInfo[from].out)
        if (nbr == to)
            return &links[li];
    return nullptr;
}

const std::string &
Fabric::nodeName(NodeId id) const
{
    checkNode(id);
    return nodeInfo[id].name;
}

void
Fabric::hop(NodeId at_node, NodeId dst, std::uint32_t bytes,
            EventFn on_delivered)
{
    const std::size_t base = pathIndex(at_node, dst);
    if (pathOffset[base] == pathOffset[base + 1])
        fatalNoRoute(at_node, dst);
    const PathHop &ph = pathHops[pathOffset[base]];
    assert(ph.link < links.size() &&
           "precompiled link index out of range");
    assert(ph.to == nextHopFlat[base] &&
           "precompiled route disagrees with next-hop table");
    Link &link = links[ph.link];
    Tick enter = now();
    Tick arrive = link.transfer(enter, bytes);
    fabricStats.totalQueueDelay += (arrive - enter) -
        link.serialization(bytes) - link.params().propagation;
    NodeId next = ph.to;
    if (next == dst) {
        at(arrive, std::move(on_delivered));
        return;
    }
    Tick forwarded = arrive + ph.forwardAfter;
    at(forwarded,
       [this, next, dst, bytes, cb = std::move(on_delivered)]() mutable {
           hop(next, dst, bytes, std::move(cb));
       });
}

void
Fabric::send(NodeId src, NodeId dst, std::uint32_t bytes,
             EventFn on_delivered)
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: send before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    ++fabricStats.packets;
    fabricStats.bytes += bytes;
    if (src == dst) {
        after(0, std::move(on_delivered));
        return;
    }
    const std::size_t base = pathIndex(src, dst);
    const std::uint32_t first = pathOffset[base];
    const std::uint32_t last = pathOffset[base + 1];
    if (first == last)
        fatalNoRoute(src, dst);
    // The fast path is exact only while the busy horizons describe
    // ALL in-flight traffic; a chain packet's future hops are not in
    // the horizons yet, so reserving ahead of one could steal the
    // FIFO slot the reference model gives it (see DESIGN.md
    // "Events-per-IO budget").
    if (fastPathEnabled && chainInFlight == 0) {
        // Walk the precompiled route, reserving each link at the
        // packet's computed entry time while the path stays
        // uncontended. Entry times are exactly what the per-hop chain
        // would observe, so occupy() advances each busy cursor to the
        // same horizon and the same arrival tick falls out — with
        // zero intermediate events.
        Tick when = now();
        for (std::uint32_t i = first; /**/; ++i) {
            if (i == last) {
                ++fabricStats.fastPathPackets;
                at(when, std::move(on_delivered));
                return;
            }
            const PathHop &ph = pathHops[i];
            Link &link = links[ph.link];
            if (!link.freeAt(when)) {
                // First contended link: hand the packet to the
                // per-hop model from this node onward, at the tick it
                // would have entered the link. transfer() re-reads
                // the busy horizon when the event fires, so queueing
                // is accounted exactly as in the reference model.
                if (i == first)
                    break;
                NodeId at_node = pathHops[i - 1].to;
                at(when,
                   [this, at_node, dst, bytes,
                    cb = chainWrap(std::move(on_delivered))]() mutable {
                       hop(at_node, dst, bytes, std::move(cb));
                   });
                return;
            }
            when = link.occupy(when, bytes) + ph.forwardAfter;
        }
    }
    hop(src, dst, bytes, chainWrap(std::move(on_delivered)));
}

/**
 * Mark a packet as traversing in per-hop chain mode and arrange for
 * the mark to drop when its delivery callback fires.
 */
EventFn
Fabric::chainWrap(EventFn on_delivered)
{
    ++fabricStats.fallbackPackets;
    ++chainInFlight;
    return EventFn([this, cb = std::move(on_delivered)]() mutable {
        --chainInFlight;
        cb();
    });
}

Tick
Fabric::unloadedLatency(NodeId src, NodeId dst,
                        std::uint32_t bytes) const
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: unloadedLatency before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    if (src == dst)
        return 0;
    const std::size_t base = pathIndex(src, dst);
    const std::uint32_t first = pathOffset[base];
    const std::uint32_t last = pathOffset[base + 1];
    if (first == last)
        fatalNoRoute(src, dst);
    Tick total = 0;
    for (std::uint32_t i = first; i != last; ++i) {
        const PathHop &ph = pathHops[i];
        const Link &link = links[ph.link];
        total += link.serialization(bytes) + link.params().propagation +
            ph.forwardAfter;
    }
    return total;
}

unsigned
Fabric::hopCount(NodeId src, NodeId dst) const
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: hopCount before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    const std::size_t base = pathIndex(src, dst);
    return pathOffset[base + 1] - pathOffset[base];
}

} // namespace afa::pcie
