#include "pcie/fabric.hh"

#include <cassert>
#include <deque>

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::pcie {

using afa::sim::EventFn;
using afa::sim::Simulator;

Fabric::Fabric(Simulator &simulator, std::string fabric_name)
    : SimObject(simulator, std::move(fabric_name)), isFinalized(false)
{
}

NodeId
Fabric::addEndpoint(const std::string &node_name)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot add nodes after finalize()",
                        name().c_str());
    nodeInfo.push_back(NodeInfo{node_name, false, 0, {}});
    return static_cast<NodeId>(nodeInfo.size() - 1);
}

NodeId
Fabric::addSwitch(const std::string &node_name, Tick forward_latency)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot add nodes after finalize()",
                        name().c_str());
    nodeInfo.push_back(NodeInfo{node_name, true, forward_latency, {}});
    return static_cast<NodeId>(nodeInfo.size() - 1);
}

void
Fabric::checkNode(NodeId id) const
{
    if (id >= nodeInfo.size())
        afa::sim::panic("fabric %s: bad node id %u", name().c_str(), id);
}

void
Fabric::fatalNoRoute(NodeId at_node, NodeId dst) const
{
    afa::sim::fatal("fabric %s: no route %s -> %s", name().c_str(),
                    nodeInfo[at_node].name.c_str(),
                    nodeInfo[dst].name.c_str());
}

void
Fabric::connect(NodeId a, NodeId b, const LinkParams &params)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot connect after finalize()",
                        name().c_str());
    checkNode(a);
    checkNode(b);
    if (a == b)
        afa::sim::fatal("fabric %s: self-link on node %u",
                        name().c_str(), a);
    links.emplace_back(nodeInfo[a].name + "->" + nodeInfo[b].name,
                       params);
    nodeInfo[a].out.emplace_back(b, links.size() - 1);
    links.emplace_back(nodeInfo[b].name + "->" + nodeInfo[a].name,
                       params);
    nodeInfo[b].out.emplace_back(a, links.size() - 1);
}

void
Fabric::finalize()
{
    const std::size_t n = nodeInfo.size();
    nextHopFlat.assign(n * n, kInvalidNode);
    // BFS from every destination, recording each node's parent-ward
    // neighbour (first hop toward dst).
    for (NodeId dst = 0; dst < n; ++dst) {
        std::vector<NodeId> toward(n, kInvalidNode);
        std::deque<NodeId> queue{dst};
        std::vector<bool> seen(n, false);
        seen[dst] = true;
        while (!queue.empty()) {
            NodeId cur = queue.front();
            queue.pop_front();
            for (const auto &[nbr, li] : nodeInfo[cur].out) {
                (void)li;
                if (seen[nbr])
                    continue;
                seen[nbr] = true;
                toward[nbr] = cur;
                queue.push_back(nbr);
            }
        }
        for (NodeId src = 0; src < n; ++src)
            nextHopFlat[pathIndex(src, dst)] = toward[src];
    }
    // Precompile every route into packed hop records, so send() never
    // walks adjacency lists or the next-hop table per packet.
    pathHops.clear();
    pathOffset.assign(n * n + 1, 0);
    for (NodeId src = 0; src < n; ++src) {
        for (NodeId dst = 0; dst < n; ++dst) {
            if (src != dst) {
                NodeId at_node = src;
                while (at_node != dst) {
                    NodeId next = nextHopFlat[pathIndex(at_node, dst)];
                    if (next == kInvalidNode)
                        break; // unreachable: leave the route empty
                    Tick fwd = next == dst
                        ? 0 : nodeInfo[next].forwardLatency;
                    pathHops.push_back(PathHop{
                        static_cast<std::uint32_t>(
                            linkIndex(at_node, next)),
                        next, fwd});
                    at_node = next;
                }
            }
            pathOffset[pathIndex(src, dst) + 1] =
                static_cast<std::uint32_t>(pathHops.size());
        }
    }
    linkResv.assign(links.size(), {});
    linkFaultRate.assign(links.size(), 0.0);
    faultedLinks = 0;
    isFinalized = true;
}

void
Fabric::setLinkFaultRate(std::size_t link_idx, double rate)
{
    double &cur = linkFaultRate[link_idx];
    if (cur == 0.0 && rate > 0.0)
        ++faultedLinks;
    else if (cur > 0.0 && rate == 0.0)
        --faultedLinks;
    cur = rate;
}

void
Fabric::setEndpointFault(NodeId endpoint, double rate)
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: setEndpointFault before finalize()",
                        name().c_str());
    checkNode(endpoint);
    if (rate > 0.0 && !faultRng)
        afa::sim::panic("fabric %s: endpoint fault without a fault "
                        "rng (setFaultRng() first)", name().c_str());
    if (rate < 0.0 || rate >= 1.0)
        afa::sim::fatal("fabric %s: link fault rate %.3f out of [0, 1)",
                        name().c_str(), rate);
    // Both directions: TX and RX lanes of the endpoint's links.
    for (const auto &[nbr, li] : nodeInfo[endpoint].out) {
        setLinkFaultRate(li, rate);
        setLinkFaultRate(linkIndex(nbr, endpoint), rate);
    }
}

bool
Fabric::routeFaulted(std::uint32_t first, std::uint32_t last) const
{
    for (std::uint32_t i = first; i != last; ++i)
        if (linkFaultRate[pathHops[i].link] > 0.0)
            return true;
    return false;
}

std::size_t
Fabric::linkIndex(NodeId from, NodeId to) const
{
    for (const auto &[nbr, li] : nodeInfo[from].out)
        if (nbr == to)
            return li;
    afa::sim::panic("fabric %s: no link %s->%s", name().c_str(),
                    nodeInfo[from].name.c_str(),
                    nodeInfo[to].name.c_str());
}

const Link *
Fabric::linkBetween(NodeId from, NodeId to) const
{
    for (const auto &[nbr, li] : nodeInfo[from].out)
        if (nbr == to)
            return &links[li];
    return nullptr;
}

const std::string &
Fabric::nodeName(NodeId id) const
{
    checkNode(id);
    return nodeInfo[id].name;
}

void
Fabric::hop(NodeId at_node, NodeId dst, std::uint32_t bytes,
            EventFn on_delivered)
{
    const std::size_t base = pathIndex(at_node, dst);
    if (pathOffset[base] == pathOffset[base + 1])
        fatalNoRoute(at_node, dst);
    const PathHop &ph = pathHops[pathOffset[base]];
    assert(ph.link < links.size() &&
           "precompiled link index out of range");
    assert(ph.to == nextHopFlat[base] &&
           "precompiled route disagrees with next-hop table");
    Link &link = links[ph.link];
    Tick enter = now();
    // Arrival-order FIFO: anything reserved on this link for a later
    // start must yield to this packet (the reference model serves
    // links strictly in arrival order; a pending reservation's start
    // IS its owner's reference arrival).
    {
        const auto &resv = linkResv[ph.link];
        if (!resv.empty() && resv.back().start > enter)
            displaceEarlier(ph.link, enter);
    }
    Tick arrive = link.transfer(enter, bytes);
    fabricStats.totalQueueDelay += (arrive - enter) -
        link.serialization(bytes) - link.params().propagation;
    if (faultedLinks) {
        // Injected link fault: each delivery attempt is corrupted
        // with probability `rate` and the payload re-serialised.
        // Bounded so a spec rate close to 1 cannot livelock the hop.
        double rate = linkFaultRate[ph.link];
        if (rate > 0.0) {
            unsigned replays = 0;
            while (replays < 16 && faultRng->chance(rate)) {
                arrive = link.transfer(arrive, bytes);
                ++replays;
            }
            fabricStats.linkReplays += replays;
        }
    }
    NodeId next = ph.to;
    if (next == dst) {
        at(arrive, std::move(on_delivered));
        return;
    }
    Tick forwarded = arrive + ph.forwardAfter;
    at(forwarded,
       [this, next, dst, bytes, cb = std::move(on_delivered)]() mutable {
           hop(next, dst, bytes, std::move(cb));
       });
}

void
Fabric::send(NodeId src, NodeId dst, std::uint32_t bytes,
             EventFn on_delivered)
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: send before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    ++fabricStats.packets;
    fabricStats.bytes += bytes;
    if (src == dst) {
        if (curIo)
            spanLog->record(curStage, curIo, now(), now(), curTrack,
                            afa::obs::kSpanFlagSelf);
        after(0, std::move(on_delivered));
        return;
    }
    const std::size_t base = pathIndex(src, dst);
    const std::uint32_t first = pathOffset[base];
    const std::uint32_t last = pathOffset[base + 1];
    if (first == last)
        fatalNoRoute(src, dst);
    // The fast path is exact only while the busy horizons describe
    // ALL in-flight traffic; a chain packet's future hops are not in
    // the horizons yet, so reserving ahead of one could steal the
    // FIFO slot the reference model gives it (see DESIGN.md
    // "Events-per-IO budget").
    if (fastPathEnabled && chainInFlight == 0 &&
        (faultedLinks == 0 || !routeFaulted(first, last))) {
        // Walk the precompiled route, reserving each link at the
        // packet's computed entry time while the path stays
        // uncontended. Entry times are exactly what the per-hop chain
        // would observe, so occupy() advances each busy cursor to the
        // same horizon and the same arrival tick falls out — with
        // zero intermediate events. Every reservation past the first
        // hop starts in the future; each is recorded in linkResv so
        // that a packet reaching the link earlier can revoke it
        // (displaceEarlier()).
        Tick when = now();
        std::uint32_t rec_idx = kNoFlight;
        for (std::uint32_t i = first; /**/; ++i) {
            if (i == last) {
                ++fabricStats.fastPathPackets;
                // Span committed at the computed arrival; a later
                // displacement moves the true delivery but not this
                // record (see sendSpanned() in the header).
                if (curIo)
                    spanLog->record(curStage, curIo, curBegin, when,
                                    curTrack, afa::obs::kSpanFlagFastPath);
                if (rec_idx == kNoFlight) {
                    // Single-hop route: no future reservation exists,
                    // so nothing could ever displace this delivery.
                    at(when, std::move(on_delivered));
                } else {
                    FlightRecord &rec = flights[rec_idx];
                    rec.cb = std::move(on_delivered);
                    rec.fullWalk = true;
                    rec.hopsWalked = last - first;
                    rec.ev = at(when, [this, rec_idx] {
                        completeFlight(rec_idx);
                    });
                }
                return;
            }
            const PathHop &ph = pathHops[i];
            Link &link = links[ph.link];
            if (!link.freeAt(when)) {
                // First contended link: hand the packet to the
                // per-hop model from this node onward, at the tick it
                // would have entered the link. transfer() re-reads
                // the busy horizon when the event fires, so queueing
                // is accounted exactly as in the reference model.
                // (If the horizon blocking us is itself a pending
                // future reservation starting after `when`, we are
                // the earlier entrant: hop() revokes it when the
                // continuation fires at `when`.)
                if (i == first)
                    break;
                if (rec_idx == kNoFlight) {
                    // Only the first hop was occupied (it started at
                    // send time, so it is not displaceable): a plain
                    // chain continuation suffices.
                    NodeId at_node = pathHops[i - 1].to;
                    at(when,
                       [this, at_node, dst, bytes,
                        cb = chainWrap(std::move(on_delivered))]() mutable {
                           hop(at_node, dst, bytes, std::move(cb));
                       });
                } else {
                    // The walked prefix holds future reservations;
                    // keep it revocable until the continuation fires.
                    FlightRecord &rec = flights[rec_idx];
                    rec.cb = chainWrap(std::move(on_delivered));
                    rec.fullWalk = false;
                    rec.hopsWalked = i - first;
                    rec.ev = at(when, [this, rec_idx] {
                        completeFlight(rec_idx);
                    });
                }
                return;
            }
            Tick prev = link.busyUntil();
            if (i != first) {
                if (rec_idx == kNoFlight)
                    rec_idx = allocFlight(first, dst, bytes);
                linkResv[ph.link].push_back(
                    Reservation{when, prev, rec_idx, i - first});
            }
            when = link.occupy(when, bytes) + ph.forwardAfter;
        }
    }
    hop(src, dst, bytes, chainWrap(std::move(on_delivered)));
}

std::uint32_t
Fabric::allocFlight(std::uint32_t path_first, NodeId dst,
                    std::uint32_t bytes)
{
    std::uint32_t idx;
    if (!freeFlights.empty()) {
        idx = freeFlights.back();
        freeFlights.pop_back();
    } else {
        flights.emplace_back();
        idx = static_cast<std::uint32_t>(flights.size() - 1);
    }
    FlightRecord &rec = flights[idx];
    rec.pathFirst = path_first;
    rec.dst = dst;
    rec.bytes = bytes;
    rec.active = true;
    rec.displaced = false;
    return idx;
}

void
Fabric::freeFlight(std::uint32_t idx)
{
    FlightRecord &rec = flights[idx];
    rec.cb = nullptr;
    rec.ev = afa::sim::EventHandle{};
    rec.active = false;
    freeFlights.push_back(idx);
}

/**
 * A flight record's event fired: all of its reservations have started
 * (the event fires no earlier than the last entry tick), so drop them
 * and either deliver (full walk) or re-enter the per-hop model after
 * the walked prefix (mid-path fallback).
 */
void
Fabric::completeFlight(std::uint32_t idx)
{
    FlightRecord &rec = flights[idx];
    assert(rec.active && "completeFlight() on a free record");
    for (std::uint32_t h = 1; h < rec.hopsWalked; ++h)
        pruneExpired(pathHops[rec.pathFirst + h].link);
    EventFn cb = std::move(rec.cb);
    bool full = rec.fullWalk;
    NodeId cont = full ? kInvalidNode
        : pathHops[rec.pathFirst + rec.hopsWalked - 1].to;
    NodeId dst = rec.dst;
    std::uint32_t bytes = rec.bytes;
    // Free before invoking: the callback may re-enter send() and
    // allocate flight records itself.
    freeFlight(idx);
    if (full)
        cb();
    else
        hop(cont, dst, bytes, std::move(cb));
}

/**
 * Drop expired reservation entries (start <= now) from the front of a
 * link's list. An expired entry can neither trigger a displacement
 * (arrivals enter at >= now) nor be revoked (only starts after the
 * entrant are), so it is pure garbage; entries are start-sorted, so
 * all expired entries sit at the front.
 */
void
Fabric::pruneExpired(std::size_t link_idx)
{
    auto &resv = linkResv[link_idx];
    std::size_t keep = 0;
    while (keep < resv.size() && resv[keep].start <= now())
        ++keep;
    if (keep)
        resv.erase(resv.begin(),
                   resv.begin() + static_cast<std::ptrdiff_t>(keep));
}

/**
 * Revoke the tail of a link's reservation list from position @p pos:
 * roll each occupancy back (reverse order, so each restored horizon is
 * exact) and mark each owner displaced at the lowest affected hop.
 * Owners newly displaced (or displaced at a lower hop than before) are
 * pushed on @p work for a downstream re-scan; @p all collects each
 * displaced record once.
 */
void
Fabric::cutReservations(std::size_t link_idx, std::size_t pos,
                        std::vector<std::uint32_t> &work,
                        std::vector<std::uint32_t> &all)
{
    auto &resv = linkResv[link_idx];
    for (std::size_t q = resv.size(); q-- > pos; ) {
        const Reservation &e = resv[q];
        FlightRecord &rec = flights[e.rec];
        assert(rec.active && "reservation owned by a free record");
        links[link_idx].unoccupy(e.prevHorizon, rec.bytes);
        if (!rec.displaced) {
            rec.displaced = true;
            rec.displacedHop = e.hop;
            rec.displacedStart = e.start;
            work.push_back(e.rec);
            all.push_back(e.rec);
        } else if (e.hop < rec.displacedHop) {
            rec.displacedHop = e.hop;
            rec.displacedStart = e.start;
            work.push_back(e.rec);
        }
    }
    resv.resize(pos);
}

/**
 * A packet is entering @p link_idx at @p enter ahead of at least one
 * pending reservation. The reference model serves every link in
 * arrival order, and a pending reservation's start is its owner's
 * reference arrival, so every reservation starting after @p enter must
 * yield: revoke it, cascade to the owner's downstream reservations
 * (and to reservations queued behind those — their owners' arrivals
 * are later still), cancel each owner's scheduled event, and re-enter
 * each owner into the per-hop model at the node before its displaced
 * hop, at its recorded entry tick — exactly where and when the
 * reference model has it arrive. The owner's committed prefix (hops
 * before the displacement point) is untouched: the packet really does
 * traverse those links at the reserved ticks.
 */
void
Fabric::displaceEarlier(std::size_t link_idx, Tick enter)
{
    // A displacement can run inside another packet's sendSpanned()
    // (hop() is called synchronously on the full-fallback path). The
    // chainWrap() below re-wraps *displaced* packets' callbacks; they
    // must not inherit the displacing sender's span identity.
    std::uint64_t saved_io = curIo;
    curIo = 0;
    std::vector<std::uint32_t> work;
    std::vector<std::uint32_t> all;
    auto &resv = linkResv[link_idx];
    std::size_t pos = resv.size();
    while (pos > 0 && resv[pos - 1].start > enter)
        --pos;
    cutReservations(link_idx, pos, work, all);
    while (!work.empty()) {
        std::uint32_t ri = work.back();
        work.pop_back();
        FlightRecord &rec = flights[ri];
        // Remove the owner's not-yet-started reservations downstream
        // of its displacement point. (Entries already removed by an
        // earlier cut are simply not found.)
        for (std::uint32_t h = rec.displacedHop + 1;
             h < rec.hopsWalked; ++h) {
            std::size_t li = pathHops[rec.pathFirst + h].link;
            auto &lv = linkResv[li];
            for (std::size_t p = 0; p < lv.size(); ++p) {
                if (lv[p].rec == ri && lv[p].hop == h) {
                    cutReservations(li, p, work, all);
                    break;
                }
            }
        }
    }
    for (std::uint32_t ri : all) {
        FlightRecord &rec = flights[ri];
        bool was_pending = sim().cancel(rec.ev);
        assert(was_pending && "displaced a record whose event fired");
        (void)was_pending;
        if (rec.fullWalk) {
            // No longer a single-event delivery: recount it as a
            // fallback packet (chainWrap also holds the fast-path
            // gate closed until it is delivered).
            --fabricStats.fastPathPackets;
            rec.cb = chainWrap(std::move(rec.cb));
            rec.fullWalk = false;
        }
        // The record now represents only the committed prefix, with
        // its continuation at the displaced hop's entry tick; it
        // stays revocable at hops below the displacement point.
        rec.hopsWalked = rec.displacedHop;
        rec.displaced = false;
        rec.ev = at(rec.displacedStart,
                    [this, ri] { completeFlight(ri); });
    }
    curIo = saved_io;
}

/**
 * Mark a packet as traversing in per-hop chain mode and arrange for
 * the mark to drop when its delivery callback fires.
 */
EventFn
Fabric::chainWrap(EventFn on_delivered)
{
    ++fabricStats.fallbackPackets;
    ++chainInFlight;
    if (curIo) {
        // Fallback spans get their real delivery tick: the record is
        // committed when the wrapped callback fires.
        return EventFn([this, cb = std::move(on_delivered), io = curIo,
                        track = curTrack, stage = curStage,
                        begin = curBegin]() mutable {
            --chainInFlight;
            spanLog->record(stage, io, begin, now(), track,
                            afa::obs::kSpanFlagFallback);
            cb();
        });
    }
    return EventFn([this, cb = std::move(on_delivered)]() mutable {
        --chainInFlight;
        cb();
    });
}

void
Fabric::sendSpanned(NodeId src, NodeId dst, std::uint32_t bytes,
                    std::uint64_t io, std::uint16_t track,
                    afa::obs::Stage stage, EventFn on_delivered)
{
    if (spanLog && io != 0 &&
        spanLog->wants(afa::obs::categoryOf(stage))) {
        curIo = io;
        curTrack = track;
        curStage = stage;
        curBegin = now();
        send(src, dst, bytes, std::move(on_delivered));
        curIo = 0;
        return;
    }
    send(src, dst, bytes, std::move(on_delivered));
}

Tick
Fabric::unloadedLatency(NodeId src, NodeId dst,
                        std::uint32_t bytes) const
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: unloadedLatency before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    if (src == dst)
        return 0;
    const std::size_t base = pathIndex(src, dst);
    const std::uint32_t first = pathOffset[base];
    const std::uint32_t last = pathOffset[base + 1];
    if (first == last)
        fatalNoRoute(src, dst);
    Tick total = 0;
    for (std::uint32_t i = first; i != last; ++i) {
        const PathHop &ph = pathHops[i];
        const Link &link = links[ph.link];
        total += link.serialization(bytes) + link.params().propagation +
            ph.forwardAfter;
    }
    return total;
}

unsigned
Fabric::hopCount(NodeId src, NodeId dst) const
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: hopCount before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    const std::size_t base = pathIndex(src, dst);
    return pathOffset[base + 1] - pathOffset[base];
}

} // namespace afa::pcie
