#include "pcie/fabric.hh"

#include <algorithm>
#include <cassert>
#include <deque>

#include "obs/span_log.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/simulator.hh"

namespace afa::pcie {

using afa::sim::EventFn;
using afa::sim::Simulator;

Fabric::Fabric(Simulator &simulator, std::string fabric_name)
    : SimObject(simulator, std::move(fabric_name)), isFinalized(false)
{
}

NodeId
Fabric::addEndpoint(const std::string &node_name)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot add nodes after finalize()",
                        name().c_str());
    nodeInfo.push_back(NodeInfo{node_name, false, 0, {}});
    return static_cast<NodeId>(nodeInfo.size() - 1);
}

NodeId
Fabric::addSwitch(const std::string &node_name, Tick forward_latency)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot add nodes after finalize()",
                        name().c_str());
    nodeInfo.push_back(NodeInfo{node_name, true, forward_latency, {}});
    return static_cast<NodeId>(nodeInfo.size() - 1);
}

void
Fabric::checkNode(NodeId id) const
{
    if (id >= nodeInfo.size())
        afa::sim::panic("fabric %s: bad node id %u", name().c_str(), id);
}

void
Fabric::fatalNoRoute(NodeId at_node, NodeId dst) const
{
    afa::sim::fatal("fabric %s: no route %s -> %s", name().c_str(),
                    nodeInfo[at_node].name.c_str(),
                    nodeInfo[dst].name.c_str());
}

void
Fabric::connect(NodeId a, NodeId b, const LinkParams &params)
{
    if (isFinalized)
        afa::sim::fatal("fabric %s: cannot connect after finalize()",
                        name().c_str());
    checkNode(a);
    checkNode(b);
    if (a == b)
        afa::sim::fatal("fabric %s: self-link on node %u",
                        name().c_str(), a);
    links.emplace_back(nodeInfo[a].name + "->" + nodeInfo[b].name,
                       params);
    nodeInfo[a].out.emplace_back(b, links.size() - 1);
    links.emplace_back(nodeInfo[b].name + "->" + nodeInfo[a].name,
                       params);
    nodeInfo[b].out.emplace_back(a, links.size() - 1);
}

void
Fabric::finalize()
{
    const std::size_t n = nodeInfo.size();
    nextHopFlat.assign(n * n, kInvalidNode);
    // BFS from every destination, recording each node's parent-ward
    // neighbour (first hop toward dst).
    for (NodeId dst = 0; dst < n; ++dst) {
        std::vector<NodeId> toward(n, kInvalidNode);
        std::deque<NodeId> queue{dst};
        std::vector<bool> seen(n, false);
        seen[dst] = true;
        while (!queue.empty()) {
            NodeId cur = queue.front();
            queue.pop_front();
            for (const auto &[nbr, li] : nodeInfo[cur].out) {
                (void)li;
                if (seen[nbr])
                    continue;
                seen[nbr] = true;
                toward[nbr] = cur;
                queue.push_back(nbr);
            }
        }
        for (NodeId src = 0; src < n; ++src)
            nextHopFlat[pathIndex(src, dst)] = toward[src];
    }
    // Precompile every route into packed hop records, so send() never
    // walks adjacency lists or the next-hop table per packet.
    pathHops.clear();
    pathOffset.assign(n * n + 1, 0);
    for (NodeId src = 0; src < n; ++src) {
        for (NodeId dst = 0; dst < n; ++dst) {
            if (src != dst) {
                NodeId at_node = src;
                while (at_node != dst) {
                    NodeId next = nextHopFlat[pathIndex(at_node, dst)];
                    if (next == kInvalidNode)
                        break; // unreachable: leave the route empty
                    Tick fwd = next == dst
                        ? 0 : nodeInfo[next].forwardLatency;
                    pathHops.push_back(PathHop{
                        static_cast<std::uint32_t>(
                            linkIndex(at_node, next)),
                        next, fwd});
                    at_node = next;
                }
            }
            pathOffset[pathIndex(src, dst) + 1] =
                static_cast<std::uint32_t>(pathHops.size());
        }
    }
    linkResv.assign(links.size(), {});
    linkFaultRate.assign(links.size(), 0.0);
    faultedLinks = 0;
    isFinalized = true;
}

void
Fabric::setLinkFaultRate(std::size_t link_idx, double rate)
{
    double &cur = linkFaultRate[link_idx];
    if (cur == 0.0 && rate > 0.0) {
        ++faultedLinks;
        // Each faulted link draws its replay coin flips from its own
        // stream, forked by link index from the FaultEngine's
        // plan-seeded stream. Per-link streams (rather than one
        // shared stream) make the flips a function of each link's own
        // packet order — which is model-deterministic — instead of
        // the global interleaving of hop events, which shifts with
        // --shards. Re-arming a link restarts its stream; that too is
        // a pure function of the plan.
        if (linkFaultStream.size() < links.size())
            linkFaultStream.resize(links.size());
        linkFaultStream[link_idx] =
            faultRng->fork(static_cast<std::uint64_t>(link_idx));
    } else if (cur > 0.0 && rate == 0.0) {
        --faultedLinks;
    }
    cur = rate;
}

void
Fabric::setEndpointFault(NodeId endpoint, double rate)
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: setEndpointFault before finalize()",
                        name().c_str());
    checkNode(endpoint);
    if (rate > 0.0 && !faultRng)
        afa::sim::panic("fabric %s: endpoint fault without a fault "
                        "rng (setFaultRng() first)", name().c_str());
    if (rate < 0.0 || rate >= 1.0)
        afa::sim::fatal("fabric %s: link fault rate %.3f out of [0, 1)",
                        name().c_str(), rate);
    // Both directions: TX and RX lanes of the endpoint's links.
    for (const auto &[nbr, li] : nodeInfo[endpoint].out) {
        setLinkFaultRate(li, rate);
        setLinkFaultRate(linkIndex(nbr, endpoint), rate);
    }
}

bool
Fabric::routeFaulted(std::uint32_t first, std::uint32_t last) const
{
    for (std::uint32_t i = first; i != last; ++i)
        if (linkFaultRate[pathHops[i].link] > 0.0)
            return true;
    return false;
}

std::size_t
Fabric::linkIndex(NodeId from, NodeId to) const
{
    for (const auto &[nbr, li] : nodeInfo[from].out)
        if (nbr == to)
            return li;
    afa::sim::panic("fabric %s: no link %s->%s", name().c_str(),
                    nodeInfo[from].name.c_str(),
                    nodeInfo[to].name.c_str());
}

const Link *
Fabric::linkBetween(NodeId from, NodeId to) const
{
    for (const auto &[nbr, li] : nodeInfo[from].out)
        if (nbr == to)
            return &links[li];
    return nullptr;
}

const std::string &
Fabric::nodeName(NodeId id) const
{
    checkNode(id);
    return nodeInfo[id].name;
}

/**
 * Schedule a fabric-internal transport event (hop continuations,
 * mid-path flight completions). These are plumbing, not model events:
 * how many of them a packet needs depends on which execution strategy
 * (fast path, mid-path fallback, full chain) it happened to take, and
 * that choice is not invariant across --shards. Marking them internal
 * keeps executedEvents() — and the `events=` line of every figure —
 * at exactly one counted event per delivered packet regardless of the
 * path taken, so event counts are bit-identical at any shard count.
 */
afa::sim::EventHandle
Fabric::atInternal(Tick when, EventFn fn)
{
    return sim().scheduleOnShard(afa::sim::currentShard(), when,
                                 std::move(fn), /*internal=*/true);
}

void
Fabric::hop(NodeId at_node, NodeId dst, std::uint32_t bytes,
            EventFn on_delivered, DeliverCtx ctx, Tick enter)
{
    const std::size_t base = pathIndex(at_node, dst);
    if (pathOffset[base] == pathOffset[base + 1])
        fatalNoRoute(at_node, dst);
    const PathHop &ph = pathHops[pathOffset[base]];
    assert(ph.link < links.size() &&
           "precompiled link index out of range");
    assert(ph.to == nextHopFlat[base] &&
           "precompiled route disagrees with next-hop table");
    assert(enter <= now() && "hop entry tick in the future");
    Link &link = links[ph.link];
    // Arrival-order FIFO: anything reserved on this link for a later
    // start must yield to this packet (the reference model serves
    // links strictly in arrival order; a pending reservation's start
    // IS its owner's reference arrival).
    {
        const auto &resv = linkResv[ph.link];
        if (!resv.empty() && resv.back().start > enter)
            displaceEarlier(ph.link, enter);
    }
    Tick arrive = link.transfer(enter, afa::sim::Bytes{bytes});
    fabricStats.totalQueueDelay += (arrive - enter) -
        link.serialization(afa::sim::Bytes{bytes}) -
        link.params().propagation;
    if (faultedLinks) {
        // Injected link fault: each delivery attempt is corrupted
        // with probability `rate` and the payload re-serialised.
        // Bounded so a spec rate close to 1 cannot livelock the hop.
        double rate = linkFaultRate[ph.link];
        if (rate > 0.0) {
            unsigned replays = 0;
            afa::sim::Rng &stream = linkFaultStream[ph.link];
            while (replays < 16 && stream.chance(rate)) {
                arrive = link.transfer(arrive,
                                       afa::sim::Bytes{bytes});
                ++replays;
            }
            fabricStats.linkReplays += replays;
        }
    }
    NodeId next = ph.to;
    if (next == dst) {
        scheduleDelivery(arrive, dst, std::move(on_delivered), ctx);
        return;
    }
    Tick forwarded = arrive + ph.forwardAfter;
    atInternal(forwarded,
               [this, next, dst, bytes, ctx,
                cb = std::move(on_delivered)]() mutable {
                   hop(next, dst, bytes, std::move(cb), ctx, now());
               });
}

/**
 * Schedule a packet's final delivery at @p arrive.
 *
 * Endpoint deliveries (deliveryOrder() != 0) are posted — in serial
 * runs too — through scheduleOnShard() with the node's canonical
 * ordering band, so their same-tick position is a function of (tick,
 * destination, poster order) alone and replay is bit-identical at any
 * shard count; the chain/span bookkeeping stays on the fabric's shard
 * as an uncounted companion event. Host-bound deliveries are always
 * fabric-local and keep plain FIFO order. Exactly one counted event
 * exists per delivery either way.
 */
void
Fabric::scheduleDelivery(Tick arrive, NodeId dst, EventFn cb,
                         const DeliverCtx &ctx)
{
    const std::uint32_t ord = deliveryOrder(dst);
    if (ord == 0) {
        assert(nodeShardOf(dst) == afa::sim::currentShard() &&
               "unmarked node delivered across shards");
        if (!ctx.chained) {
            at(arrive, std::move(cb));
        } else {
            at(arrive, [this, ctx, f = std::move(cb)]() mutable {
                finishChained(ctx);
                f();
            });
        }
        return;
    }
    sim().scheduleOnShard(nodeShardOf(dst), arrive, std::move(cb),
                          /*internal=*/false, ord);
    if (ctx.chained)
        atInternal(arrive, [this, ctx] { finishChained(ctx); });
}

void
Fabric::send(NodeId src, NodeId dst, std::uint32_t bytes,
             EventFn on_delivered)
{
    sendAt(now(), src, dst, bytes, std::move(on_delivered));
}

void
Fabric::sendAt(Tick enter, NodeId src, NodeId dst, std::uint32_t bytes,
               EventFn on_delivered)
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: send before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    assert(enter <= now() && "send entry tick in the future");
    ++fabricStats.packets;
    fabricStats.bytes += bytes;
    if (src == dst) {
        if (curIo)
            spanLog->record(curStage, curIo, now(), now(), curTrack,
                            afa::obs::kSpanFlagSelf);
        after(0, std::move(on_delivered));
        return;
    }
    const std::size_t base = pathIndex(src, dst);
    const std::uint32_t first = pathOffset[base];
    const std::uint32_t last = pathOffset[base + 1];
    if (first == last)
        fatalNoRoute(src, dst);
    // The fast path is exact only while the busy horizons describe
    // ALL in-flight traffic; a chain packet's future hops are not in
    // the horizons yet, so reserving ahead of one could steal the
    // FIFO slot the reference model gives it (see DESIGN.md
    // "Events-per-IO budget").
    if (fastPathEnabled && chainInFlight == 0 &&
        (faultedLinks == 0 || !routeFaulted(first, last))) {
        // Walk the precompiled route, reserving each link at the
        // packet's computed entry time while the path stays
        // uncontended. Entry times are exactly what the per-hop chain
        // would observe, so occupy() advances each busy cursor to the
        // same horizon and the same arrival tick falls out — with
        // zero intermediate events. Every reservation past the first
        // hop starts in the future; each is recorded in linkResv so
        // that a packet reaching the link earlier can revoke it
        // (displaceEarlier()).
        Tick when = enter;
        std::uint32_t rec_idx = kNoFlight;
        for (std::uint32_t i = first; /**/; ++i) {
            if (i == last) {
                ++fabricStats.fastPathPackets;
                // Span committed at the computed arrival; a later
                // displacement moves the true delivery but not this
                // record (see sendSpanned() in the header).
                if (curIo)
                    spanLog->record(curStage, curIo, curBegin, when,
                                    curTrack, afa::obs::kSpanFlagFastPath);
                if (rec_idx == kNoFlight) {
                    // Single-hop route: no future reservation exists,
                    // so nothing could ever displace this delivery.
                    scheduleDelivery(when, dst, std::move(on_delivered),
                                     DeliverCtx{});
                } else {
                    FlightRecord &rec = flights[rec_idx];
                    rec.fullWalk = true;
                    rec.hopsWalked = last - first;
                    const std::uint32_t ord = deliveryOrder(dst);
                    if (ord == 0) {
                        // Host-bound: the counted delivery event runs
                        // the callback after dropping the walked
                        // reservations.
                        rec.cb = std::move(on_delivered);
                        rec.ev = at(when, [this, rec_idx] {
                            completeFlight(rec_idx);
                        });
                    } else {
                        // Endpoint-bound: post the delivery (counted,
                        // canonical band — identical order at any
                        // shard count) and keep an uncounted
                        // bookkeeping event for the reservations. A
                        // displacement reclaims the post — legal
                        // because the delivery is always at least one
                        // lookahead window away from any displacing
                        // entrant (and trivially reclaimable when it
                        // is a same-shard post).
                        rec.xev = sim().scheduleOnShard(
                            nodeShardOf(dst), when,
                            std::move(on_delivered),
                            /*internal=*/false, ord);
                        rec.ev = atInternal(when, [this, rec_idx] {
                            completeFlight(rec_idx);
                        });
                    }
                }
                return;
            }
            const PathHop &ph = pathHops[i];
            Link &link = links[ph.link];
            if (!link.freeAt(when)) {
                // First contended link: hand the packet to the
                // per-hop model from this node onward, at the tick it
                // would have entered the link. transfer() re-reads
                // the busy horizon when the event fires, so queueing
                // is accounted exactly as in the reference model.
                // (If the horizon blocking us is itself a pending
                // future reservation starting after `when`, we are
                // the earlier entrant: hop() revokes it when the
                // continuation fires at `when`.)
                if (i == first)
                    break;
                if (rec_idx == kNoFlight) {
                    // Only the first hop was occupied (it started at
                    // send time, so it is not displaceable): a plain
                    // chain continuation suffices.
                    NodeId at_node = pathHops[i - 1].to;
                    atInternal(
                        when,
                        [this, at_node, dst, bytes, ctx = beginChain(),
                         cb = std::move(on_delivered)]() mutable {
                            hop(at_node, dst, bytes, std::move(cb), ctx,
                                now());
                        });
                } else {
                    // The walked prefix holds future reservations;
                    // keep it revocable until the continuation fires.
                    FlightRecord &rec = flights[rec_idx];
                    rec.cb = std::move(on_delivered);
                    rec.ctx = beginChain();
                    rec.fullWalk = false;
                    rec.hopsWalked = i - first;
                    // Mid-path continuation, not a delivery: internal.
                    rec.ev = atInternal(when, [this, rec_idx] {
                        completeFlight(rec_idx);
                    });
                }
                return;
            }
            Tick prev = link.busyUntil();
            if (i != first) {
                if (rec_idx == kNoFlight)
                    rec_idx = allocFlight(first, dst, bytes);
                linkResv[ph.link].push_back(
                    Reservation{when, prev, rec_idx, i - first});
            }
            when = link.occupy(when, afa::sim::Bytes{bytes}) +
                ph.forwardAfter;
        }
    }
    hop(src, dst, bytes, std::move(on_delivered), beginChain(), enter);
}

std::uint32_t
Fabric::allocFlight(std::uint32_t path_first, NodeId dst,
                    std::uint32_t bytes)
{
    std::uint32_t idx;
    if (!freeFlights.empty()) {
        idx = freeFlights.back();
        freeFlights.pop_back();
    } else {
        flights.emplace_back();
        idx = static_cast<std::uint32_t>(flights.size() - 1);
    }
    FlightRecord &rec = flights[idx];
    rec.pathFirst = path_first;
    rec.dst = dst;
    rec.bytes = bytes;
    rec.active = true;
    rec.displaced = false;
    return idx;
}

void
Fabric::freeFlight(std::uint32_t idx)
{
    FlightRecord &rec = flights[idx];
    rec.cb = nullptr;
    rec.ev = afa::sim::EventHandle{};
    rec.xev = afa::sim::EventHandle{};
    rec.ctx = DeliverCtx{};
    rec.active = false;
    freeFlights.push_back(idx);
}

/**
 * A flight record's event fired: all of its reservations have started
 * (the event fires no earlier than the last entry tick), so drop them
 * and either deliver (full walk) or re-enter the per-hop model after
 * the walked prefix (mid-path fallback).
 */
void
Fabric::completeFlight(std::uint32_t idx)
{
    FlightRecord &rec = flights[idx];
    assert(rec.active && "completeFlight() on a free record");
    for (std::uint32_t h = 1; h < rec.hopsWalked; ++h)
        pruneExpired(pathHops[rec.pathFirst + h].link);
    EventFn cb = std::move(rec.cb);
    DeliverCtx ctx = rec.ctx;
    bool full = rec.fullWalk;
    bool shipped = rec.xev.valid();
    NodeId cont = full ? kInvalidNode
        : pathHops[rec.pathFirst + rec.hopsWalked - 1].to;
    NodeId dst = rec.dst;
    std::uint32_t bytes = rec.bytes;
    // Free before invoking: the callback may re-enter send() and
    // allocate flight records itself.
    freeFlight(idx);
    if (full) {
        // When the delivery callback was shipped to another shard
        // (rec.xev) it fires there on its own; this event is the
        // serial-order bookkeeping placeholder.
        if (!shipped)
            cb();
    } else {
        hop(cont, dst, bytes, std::move(cb), ctx, now());
    }
}

/**
 * Drop expired reservation entries (start <= now) from the front of a
 * link's list. An expired entry can neither trigger a displacement
 * (arrivals enter at >= now) nor be revoked (only starts after the
 * entrant are), so it is pure garbage; entries are start-sorted, so
 * all expired entries sit at the front.
 */
void
Fabric::pruneExpired(std::size_t link_idx)
{
    auto &resv = linkResv[link_idx];
    std::size_t keep = 0;
    while (keep < resv.size() && resv[keep].start <= now())
        ++keep;
    if (keep)
        resv.erase(resv.begin(),
                   resv.begin() + static_cast<std::ptrdiff_t>(keep));
}

/**
 * Revoke the tail of a link's reservation list from position @p pos:
 * roll each occupancy back (reverse order, so each restored horizon is
 * exact) and mark each owner displaced at the lowest affected hop.
 * Owners newly displaced (or displaced at a lower hop than before) are
 * pushed on @p work for a downstream re-scan; @p all collects each
 * displaced record once.
 */
void
Fabric::cutReservations(std::size_t link_idx, std::size_t pos,
                        std::vector<std::uint32_t> &work,
                        std::vector<std::uint32_t> &all)
{
    auto &resv = linkResv[link_idx];
    for (std::size_t q = resv.size(); q-- > pos; ) {
        const Reservation &e = resv[q];
        FlightRecord &rec = flights[e.rec];
        assert(rec.active && "reservation owned by a free record");
        links[link_idx].unoccupy(e.prevHorizon,
                                 afa::sim::Bytes{rec.bytes});
        if (!rec.displaced) {
            rec.displaced = true;
            rec.displacedHop = e.hop;
            rec.displacedStart = e.start;
            work.push_back(e.rec);
            all.push_back(e.rec);
        } else if (e.hop < rec.displacedHop) {
            rec.displacedHop = e.hop;
            rec.displacedStart = e.start;
            work.push_back(e.rec);
        }
    }
    resv.resize(pos);
}

/**
 * A packet is entering @p link_idx at @p enter ahead of at least one
 * pending reservation. The reference model serves every link in
 * arrival order, and a pending reservation's start is its owner's
 * reference arrival, so every reservation starting after @p enter must
 * yield: revoke it, cascade to the owner's downstream reservations
 * (and to reservations queued behind those — their owners' arrivals
 * are later still), cancel each owner's scheduled event, and re-enter
 * each owner into the per-hop model at the node before its displaced
 * hop, at its recorded entry tick — exactly where and when the
 * reference model has it arrive. The owner's committed prefix (hops
 * before the displacement point) is untouched: the packet really does
 * traverse those links at the reserved ticks.
 */
void
Fabric::displaceEarlier(std::size_t link_idx, Tick enter)
{
    std::vector<std::uint32_t> work;
    std::vector<std::uint32_t> all;
    auto &resv = linkResv[link_idx];
    std::size_t pos = resv.size();
    while (pos > 0 && resv[pos - 1].start > enter)
        --pos;
    cutReservations(link_idx, pos, work, all);
    while (!work.empty()) {
        std::uint32_t ri = work.back();
        work.pop_back();
        FlightRecord &rec = flights[ri];
        // Remove the owner's not-yet-started reservations downstream
        // of its displacement point. (Entries already removed by an
        // earlier cut are simply not found.)
        for (std::uint32_t h = rec.displacedHop + 1;
             h < rec.hopsWalked; ++h) {
            std::size_t li = pathHops[rec.pathFirst + h].link;
            auto &lv = linkResv[li];
            for (std::size_t p = 0; p < lv.size(); ++p) {
                if (lv[p].rec == ri && lv[p].hop == h) {
                    cutReservations(li, p, work, all);
                    break;
                }
            }
        }
    }
    for (std::uint32_t ri : all) {
        FlightRecord &rec = flights[ri];
        bool was_pending = sim().cancel(rec.ev);
        assert(was_pending && "displaced a record whose event fired");
        (void)was_pending;
        if (rec.fullWalk) {
            // No longer a single-event delivery: recount it as a
            // fallback packet holding the fast-path gate closed until
            // it is delivered. A displaced packet never inherits the
            // displacing sender's span identity (ctx.io stays 0). If
            // the delivery callback was already shipped to another
            // shard, take it back — the displacing entrant is at
            // least one lookahead window before the shipped tick, so
            // the post cannot have fired.
            --fabricStats.fastPathPackets;
            if (rec.xev.valid()) {
                rec.cb = sim().reclaim(rec.xev);
                rec.xev = afa::sim::EventHandle{};
            }
            ++fabricStats.fallbackPackets;
            ++chainInFlight;
            rec.ctx = DeliverCtx{};
            rec.ctx.chained = true;
            rec.fullWalk = false;
        }
        // The record now represents only the committed prefix, with
        // its continuation at the displaced hop's entry tick; it
        // stays revocable at hops below the displacement point.
        rec.hopsWalked = rec.displacedHop;
        rec.displaced = false;
        // The displaced record is now a mid-path continuation (its
        // counted delivery event will be scheduled at the end of the
        // chain): internal.
        rec.ev = atInternal(rec.displacedStart,
                            [this, ri] { completeFlight(ri); });
    }
}

/**
 * Mark a packet as traversing in per-hop chain mode; the returned
 * context rides to the delivery point, where finishChained() drops
 * the mark (and commits the fallback span, when one is open).
 */
Fabric::DeliverCtx
Fabric::beginChain()
{
    ++fabricStats.fallbackPackets;
    ++chainInFlight;
    DeliverCtx ctx;
    ctx.chained = true;
    ctx.io = curIo;
    ctx.begin = curBegin;
    ctx.track = curTrack;
    ctx.stage = curStage;
    return ctx;
}

void
Fabric::finishChained(const DeliverCtx &ctx)
{
    --chainInFlight;
    if (ctx.io) {
        // Fallback spans get their real delivery tick: the record is
        // committed when the packet is delivered.
        spanLog->record(ctx.stage, ctx.io, ctx.begin, now(), ctx.track,
                        afa::obs::kSpanFlagFallback);
    }
}

void
Fabric::sendSpanned(NodeId src, NodeId dst, std::uint32_t bytes,
                    std::uint64_t io, std::uint16_t track,
                    afa::obs::Stage stage, EventFn on_delivered)
{
    sendSpannedAt(now(), src, dst, bytes, io, track, stage,
                  std::move(on_delivered));
}

void
Fabric::sendSpannedAt(Tick enter, NodeId src, NodeId dst,
                      std::uint32_t bytes, std::uint64_t io,
                      std::uint16_t track, afa::obs::Stage stage,
                      EventFn on_delivered)
{
    if (spanLog && io != 0 &&
        spanLog->wants(afa::obs::categoryOf(stage))) {
        curIo = io;
        curTrack = track;
        curStage = stage;
        curBegin = enter;
        sendAt(enter, src, dst, bytes, std::move(on_delivered));
        curIo = 0;
        return;
    }
    sendAt(enter, src, dst, bytes, std::move(on_delivered));
}

void
Fabric::setNodeShard(NodeId node, unsigned shard)
{
    checkNode(node);
    sim().checkShardId(shard);
    if (nodeShardMap.size() < nodeInfo.size())
        nodeShardMap.resize(nodeInfo.size(), 0);
    nodeShardMap[node] = shard;
}

void
Fabric::markEndpoint(NodeId node)
{
    checkNode(node);
    if (nodeOrder.size() < nodeInfo.size())
        nodeOrder.resize(nodeInfo.size(), 0);
    nodeOrder[node] = 2 + node;
}

afa::sim::TickDelta
Fabric::minPropagation() const
{
    Tick min_prop = 0;
    for (const Link &link : links) {
        const Tick p = link.params().propagation;
        min_prop = min_prop == 0 ? p : std::min(min_prop, p);
    }
    return afa::sim::TickDelta{static_cast<std::int64_t>(min_prop)};
}

Tick
Fabric::unloadedLatency(NodeId src, NodeId dst,
                        std::uint32_t bytes) const
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: unloadedLatency before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    if (src == dst)
        return 0;
    const std::size_t base = pathIndex(src, dst);
    const std::uint32_t first = pathOffset[base];
    const std::uint32_t last = pathOffset[base + 1];
    if (first == last)
        fatalNoRoute(src, dst);
    Tick total = 0;
    for (std::uint32_t i = first; i != last; ++i) {
        const PathHop &ph = pathHops[i];
        const Link &link = links[ph.link];
        total += link.serialization(afa::sim::Bytes{bytes}) +
            link.params().propagation +
            ph.forwardAfter;
    }
    return total;
}

unsigned
Fabric::hopCount(NodeId src, NodeId dst) const
{
    if (!isFinalized)
        afa::sim::fatal("fabric %s: hopCount before finalize()",
                        name().c_str());
    checkNode(src);
    checkNode(dst);
    const std::size_t base = pathIndex(src, dst);
    return pathOffset[base + 1] - pathOffset[base];
}

} // namespace afa::pcie
