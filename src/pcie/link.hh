/**
 * @file
 * A point-to-point PCIe link modelled as a serialising FIFO resource.
 *
 * A transfer occupies the link for bytes/bandwidth and arrives after
 * an additional propagation delay. Back-to-back transfers queue behind
 * the link's busy horizon, which is how uplink contention (and its
 * latency tail) emerges when 64 SSDs return data through one Gen3 x16
 * uplink.
 */

#ifndef AFA_PCIE_LINK_HH
#define AFA_PCIE_LINK_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace afa::pcie {

using afa::sim::Bytes;
using afa::sim::Tick;

/** PCIe generation (per-lane effective data rate). */
enum class Gen { Gen3 };

/** Parameters of one physical link. */
struct LinkParams
{
    unsigned lanes = 4;           ///< x1..x16
    Gen gen = Gen::Gen3;          ///< signalling generation
    Tick propagation = 100;       ///< flight time, ns

    /**
     * Effective per-lane throughput in bytes per second. Gen3 raw is
     * 8 GT/s with 128b/130b encoding (~985 MB/s/lane); protocol (TLP
     * header, flow control, ACK) overhead brings a 4 KB read payload
     * to roughly 800 MB/s/lane delivered, the figure we model.
     */
    double bytesPerSec() const;
};

/** A directed link with a FIFO busy horizon. */
class Link
{
  public:
    Link(std::string link_name, const LinkParams &params);

    /**
     * Reserve the link for a @p bytes transfer arriving at @p now.
     *
     * @return the tick at which the last byte (plus propagation) has
     *         arrived at the far end.
     */
    Tick transfer(Tick now, Bytes bytes);

    /**
     * True when a transfer entering at @p when would start serialising
     * immediately (no queueing behind the busy horizon).
     */
    bool freeAt(Tick when) const { return busyHorizon <= when; }

    /**
     * Reserve the link for a transfer that is known to start
     * serialising exactly at @p entry (precondition: freeAt(entry)).
     *
     * Same accounting and same returned arrival tick as
     * transfer(entry, bytes); the separate name documents the fabric
     * fast path's contract that no queueing occurs.
     */
    Tick occupy(Tick entry, Bytes bytes);

    /**
     * Revoke an occupy() whose reservation has not started: restore
     * the pre-occupy busy horizon @p prev_horizon and undo the
     * byte/transfer/busy accounting for @p bytes. Valid only while the
     * revoked reservation is the last occupancy on the link (the
     * fabric revokes strictly from the tail of each link's pending
     * reservation list); occupy() charged zero queue delay, so there
     * is none to undo.
     */
    void unoccupy(Tick prev_horizon, Bytes bytes);

    /** Serialization time for @p bytes without queueing. */
    Tick serialization(Bytes bytes) const;

    /** Time the link becomes free. */
    Tick busyUntil() const { return busyHorizon; }

    /** Total bytes carried. */
    std::uint64_t bytesCarried() const { return totalBytes; }

    /** Total transfers carried. */
    std::uint64_t transfers() const { return totalTransfers; }

    /** Accumulated busy (serialising) time. */
    Tick busyTime() const { return totalBusy; }

    /** Accumulated queueing delay endured by transfers. */
    Tick queueDelay() const { return totalQueueDelay; }

    const std::string &name() const { return linkName; }
    const LinkParams &params() const { return linkParams; }

  private:
    std::string linkName;
    LinkParams linkParams;
    double cachedBytesPerSec; ///< linkParams.bytesPerSec(), hoisted
    Tick busyHorizon;
    std::uint64_t totalBytes;
    std::uint64_t totalTransfers;
    Tick totalBusy;
    Tick totalQueueDelay;
};

} // namespace afa::pcie

#endif // AFA_PCIE_LINK_HH
