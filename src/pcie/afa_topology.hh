/**
 * @file
 * Builder for the paper's AFA fabric (Figs. 2 and 4): one host root
 * complex behind a Gen3 x16 uplink into a two-level tree of PCIe
 * switches, leaf switches feeding M.2 carrier cards that each hold
 * four M.2 NVMe SSDs.
 *
 * The full appliance has 7 switches, 61 device slots and 3 uplinks;
 * the paper (and our default) uses the one-third slice owned by a
 * single host: 16 carrier cards = 64 SSDs.
 */

#ifndef AFA_PCIE_AFA_TOPOLOGY_HH
#define AFA_PCIE_AFA_TOPOLOGY_HH

#include <vector>

#include "pcie/fabric.hh"

namespace afa::pcie {

/** Shape of the single-host AFA slice. */
struct AfaTopologyParams
{
    unsigned ssds = 64;              ///< SSD endpoints to attach
    unsigned ssdsPerCarrier = 4;     ///< M.2 slots per carrier card
    unsigned carriersPerLeaf = 3;    ///< carrier cards per leaf switch
    Tick switchForwardLatency = 300; ///< per-switch forward time, ns
    Tick linkPropagation = 100;      ///< per-link flight time, ns
    unsigned uplinkLanes = 16;       ///< host uplink (Gen3 x16)
    unsigned leafLanes = 16;         ///< root-to-leaf links
    unsigned carrierLanes = 8;       ///< leaf-to-carrier links
    unsigned ssdLanes = 4;           ///< carrier-to-M.2 links
};

/** The built topology: node ids for the host and each SSD. */
struct AfaTopology
{
    NodeId host = kInvalidNode;
    NodeId rootSwitch = kInvalidNode;
    std::vector<NodeId> leafSwitches;
    std::vector<NodeId> carrierSwitches;
    std::vector<NodeId> ssds; ///< index = nvme device number
};

/**
 * Build the AFA fabric into @p fabric and finalize it.
 */
AfaTopology buildAfaTopology(Fabric &fabric,
                             const AfaTopologyParams &params);

} // namespace afa::pcie

#endif // AFA_PCIE_AFA_TOPOLOGY_HH
