/**
 * @file
 * SNIA SSS PTS-E (Performance Test Specification - Enterprise)
 * style measurement rounds and steady-state detection.
 *
 * The paper's methodology follows PTS-E chapter 9 to "minimize the
 * systems overhead on I/O latency": measurements are taken in rounds,
 * and a metric is *steady* once, within a window of consecutive
 * rounds, (a) the excursion of the values stays within a band around
 * the window average, and (b) the best-fit slope across the window is
 * small relative to that average. This module implements exactly that
 * arithmetic plus a round runner over any IoEngine.
 */

#ifndef AFA_WORKLOAD_PTS_HH
#define AFA_WORKLOAD_PTS_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "host/scheduler.hh"
#include "sim/types.hh"
#include "workload/fio_job.hh"
#include "workload/fio_thread.hh"
#include "workload/io_engine.hh"

namespace afa::workload {

/** Steady-state detection parameters (PTS-E defaults). */
struct SteadyStateParams
{
    /** Rounds in the measurement window. */
    std::size_t window = 5;

    /** Max data excursion: |y - avg| <= band * avg within window. */
    double excursionBand = 0.20;

    /** Max slope excursion: |slope| * (window-1) <= band * avg. */
    double slopeBand = 0.10;
};

/** Verdict for one metric series. */
struct SteadyStateResult
{
    bool steady = false;
    /** First round index at which the window qualified. */
    std::size_t steadyAtRound = 0;
    double windowAverage = 0.0;
    double windowSlope = 0.0;
    double maxExcursion = 0.0;
};

/**
 * Evaluate steady state over a metric series (one value per round).
 * The window examined is the *last* `window` values ending at each
 * round, scanning forward; the first qualifying window wins.
 */
SteadyStateResult detectSteadyState(const std::vector<double> &series,
                                    const SteadyStateParams &params);

/** Least-squares slope of a series segment (x = 0..n-1). */
double bestFitSlope(const double *values, std::size_t count);

/** One PTS measurement round's results. */
struct PtsRound
{
    double iops = 0.0;
    double meanLatencyUs = 0.0;
    double p999LatencyUs = 0.0;
};

/**
 * Runs PTS-style rounds of a job against a device and reports the
 * per-round metrics plus the steady-state verdicts. The caller owns
 * the simulator loop: call start(), then sim.run() until finished().
 */
class PtsRunner : public afa::sim::SimObject
{
  public:
    PtsRunner(afa::sim::Simulator &simulator, std::string runner_name,
              afa::host::Scheduler &scheduler, IoEngine &engine,
              unsigned device, const FioJob &job_per_round,
              std::size_t rounds,
              const SteadyStateParams &params = {});

    /** Begin round 1. */
    void start();

    /** True once every round has completed. */
    bool finished() const { return completedRounds >= totalRounds; }

    const std::vector<PtsRound> &rounds() const { return results; }

    /** Steady-state verdict for IOPS across the rounds so far. */
    SteadyStateResult iopsSteadyState() const;

    /** Steady-state verdict for mean latency across the rounds. */
    SteadyStateResult latencySteadyState() const;

  private:
    afa::host::Scheduler &sched;
    IoEngine &engine;
    unsigned device;
    FioJob roundJob;
    std::size_t totalRounds;
    SteadyStateParams ssParams;
    std::size_t completedRounds;
    std::vector<PtsRound> results;
    std::unique_ptr<FioThread> currentThread;

    void runRound();
    void pollRound();
};

} // namespace afa::workload

#endif // AFA_WORKLOAD_PTS_HH
