#include "workload/fio_job.hh"

#include <cctype>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace afa::workload {

RwMode
parseRwMode(const std::string &text)
{
    if (text == "read")
        return RwMode::Read;
    if (text == "write")
        return RwMode::Write;
    if (text == "randread")
        return RwMode::RandRead;
    if (text == "randwrite")
        return RwMode::RandWrite;
    if (text == "randrw")
        return RwMode::RandRw;
    afa::sim::fatal("fio: unknown rw mode '%s'", text.c_str());
}

const char *
rwModeName(RwMode mode)
{
    switch (mode) {
      case RwMode::Read:
        return "read";
      case RwMode::Write:
        return "write";
      case RwMode::RandRead:
        return "randread";
      case RwMode::RandWrite:
        return "randwrite";
      case RwMode::RandRw:
        return "randrw";
    }
    return "?";
}

namespace {

/** Parse fio size spellings: 4096, 4k, 128K, 1m, 2M. */
std::uint64_t
parseSize(const std::string &text, const char *key)
{
    if (text.empty())
        afa::sim::fatal("fio: empty value for %s", key);
    std::size_t idx = 0;
    unsigned long long v = 0;
    try {
        v = std::stoull(text, &idx);
    } catch (const std::exception &) {
        afa::sim::fatal("fio: bad size '%s' for %s", text.c_str(), key);
    }
    std::uint64_t mult = 1;
    if (idx < text.size()) {
        char suffix = static_cast<char>(
            std::tolower(static_cast<unsigned char>(text[idx])));
        switch (suffix) {
          case 'k':
            mult = 1024;
            break;
          case 'm':
            mult = 1024ull * 1024;
            break;
          case 'g':
            mult = 1024ull * 1024 * 1024;
            break;
          default:
            afa::sim::fatal("fio: bad size suffix in '%s' for %s",
                            text.c_str(), key);
        }
        if (idx + 1 != text.size())
            afa::sim::fatal("fio: trailing junk in '%s' for %s",
                            text.c_str(), key);
    }
    return v * mult;
}

/** Parse fio duration spellings: 120 (seconds), 500ms, 30s, 2m. */
Tick
parseDuration(const std::string &text, const char *key)
{
    std::size_t idx = 0;
    double v = 0.0;
    try {
        v = std::stod(text, &idx);
    } catch (const std::exception &) {
        afa::sim::fatal("fio: bad duration '%s' for %s", text.c_str(),
                        key);
    }
    std::string suffix = text.substr(idx);
    if (suffix.empty() || suffix == "s")
        return afa::sim::sec(v);
    if (suffix == "ms")
        return afa::sim::msec(v);
    if (suffix == "us")
        return afa::sim::usec(v);
    if (suffix == "m")
        return afa::sim::sec(v * 60.0);
    afa::sim::fatal("fio: bad duration suffix '%s' for %s",
                    suffix.c_str(), key);
}

} // namespace

FioJob
FioJob::parse(const std::string &spec)
{
    FioJob job;
    // Tokenize: options separate on whitespace or commas, but a comma
    // followed by text without '=' belongs to the previous value
    // (e.g. cpus_allowed=4-19,24-39).
    std::vector<std::string> tokens;
    std::stringstream ws(spec);
    std::string word;
    while (ws >> word) {
        std::stringstream cs(word);
        std::string piece;
        while (std::getline(cs, piece, ',')) {
            if (piece.empty())
                continue;
            if (piece.find('=') == std::string::npos &&
                !tokens.empty())
                tokens.back() += "," + piece;
            else
                tokens.push_back(piece);
        }
    }
    for (const std::string &token : tokens) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            afa::sim::fatal("fio: option '%s' is not key=value",
                            token.c_str());
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "name") {
            job.name = value;
        } else if (key == "rw") {
            job.rw = parseRwMode(value);
        } else if (key == "bs") {
            auto size = parseSize(value, "bs");
            if (size == 0 || size % 4096 != 0)
                afa::sim::fatal("fio: bs must be a positive multiple "
                                "of 4k, got '%s'",
                                value.c_str());
            job.blockSize = static_cast<std::uint32_t>(size);
        } else if (key == "iodepth") {
            job.ioDepth = static_cast<unsigned>(
                parseSize(value, "iodepth"));
            if (job.ioDepth == 0)
                afa::sim::fatal("fio: iodepth must be >= 1");
        } else if (key == "runtime") {
            job.runtime = parseDuration(value, "runtime");
        } else if (key == "rwmixread") {
            job.rwMixRead = static_cast<unsigned>(
                parseSize(value, "rwmixread"));
            if (job.rwMixRead > 100)
                afa::sim::fatal("fio: rwmixread must be 0..100");
        } else if (key == "offset") {
            job.offsetBlocks = parseSize(value, "offset") / 4096;
        } else if (key == "size") {
            job.sizeBlocks = parseSize(value, "size") / 4096;
        } else if (key == "cpus_allowed") {
            job.cpusAllowed = afa::host::maskFromSet(
                afa::host::parseCpuList(value));
        } else if (key == "rtprio") {
            job.rtPriority = static_cast<int>(
                parseSize(value, "rtprio"));
        } else if (key == "thinktime") {
            job.thinkTime = parseDuration(value, "thinktime");
        } else if (key == "polling" || key == "hipri") {
            job.polling = value == "1" || value == "true";
        } else if (key == "direct" || key == "ioengine" ||
                   key == "group_reporting" || key == "numjobs") {
            // Accepted-and-ignored fio options: the model is always
            // direct async I/O on raw devices.
        } else {
            afa::sim::fatal("fio: unknown option '%s'", key.c_str());
        }
    }
    return job;
}

} // namespace afa::workload
