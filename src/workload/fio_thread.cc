#include "workload/fio_thread.hh"

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::workload {

using afa::sim::EventFn;
using afa::sim::Tick;

FioThread::FioThread(afa::sim::Simulator &simulator,
                     std::string thread_name,
                     afa::host::Scheduler &scheduler, IoEngine &io_engine,
                     unsigned device, const FioJob &job)
    : SimObject(simulator, std::move(thread_name)), sched(scheduler),
      engine(io_engine), dev(device), fioJob(job), scatter(nullptr),
      endTime(0), started(false), stopped(true), inflight(0),
      taskBusy(false), seqPointer(0)
{
    afa::host::TaskParams tp;
    tp.name = name();
    tp.affinity = fioJob.cpusAllowed;
    tp.traceSpans = true;
    if (fioJob.rtPriority > 0) {
        tp.klass = afa::host::SchedClass::RealTime;
        tp.rtPriority = fioJob.rtPriority;
    }
    task = sched.createTask(tp);

    slots.resize(fioJob.ioDepth);
    freeSlots.reserve(fioJob.ioDepth);
    for (std::uint32_t s = fioJob.ioDepth; s-- > 0;)
        freeSlots.push_back(s);

    std::uint64_t capacity = engine.deviceBlocks(dev);
    rangeStart = fioJob.offsetBlocks;
    rangeBlocks = fioJob.sizeBlocks ? fioJob.sizeBlocks
                                    : capacity - rangeStart;
    if (rangeStart >= capacity || rangeStart + rangeBlocks > capacity)
        afa::sim::fatal("%s: job range [%llu, +%llu) exceeds device "
                        "capacity %llu blocks",
                        name().c_str(),
                        (unsigned long long)rangeStart,
                        (unsigned long long)rangeBlocks,
                        (unsigned long long)capacity);
    if (rangeBlocks * 4096 < fioJob.blockSize)
        afa::sim::fatal("%s: job range smaller than one block",
                        name().c_str());
    if (fioJob.polling && fioJob.ioDepth != 1)
        afa::sim::fatal("%s: polling requires iodepth=1",
                        name().c_str());
}

void
FioThread::start(Tick start_at)
{
    if (started)
        afa::sim::panic("%s: started twice", name().c_str());
    started = true;
    at(std::max(start_at, now()), [this] {
        stopped = false;
        endTime = now() + fioJob.runtime;
        maybeSubmit();
    });
}

void
FioThread::enqueueWork(Tick cost, EventFn then)
{
    workQueue.push_back(WorkItem{cost, std::move(then)});
    pump();
}

void
FioThread::pump()
{
    if (taskBusy || workQueue.empty())
        return;
    WorkItem item = std::move(workQueue.front());
    workQueue.pop_front();
    taskBusy = true;
    sched.runFor(task, item.cost,
                 [this, then = std::move(item.then)]() mutable {
                     taskBusy = false;
                     if (then)
                         then();
                     pump();
                 });
}

void
FioThread::maybeSubmit()
{
    if (stopped)
        return;
    if (now() >= endTime) {
        stopped = true;
        return;
    }
    while (inflight < fioJob.ioDepth) {
        ++inflight;
        enqueueWork(fioJob.submitCost,
                    [this, enq = now()] { issueOne(enq); });
    }
}

IoRequest
FioThread::nextRequest()
{
    IoRequest req;
    req.device = dev;
    req.bytes = fioJob.blockSize;
    const std::uint64_t blocks_per_io = fioJob.blockSize / 4096;
    const std::uint64_t slots = rangeBlocks / blocks_per_io;

    bool is_read = true;
    switch (fioJob.rw) {
      case RwMode::Read:
      case RwMode::Write:
        req.lba = rangeStart + seqPointer * blocks_per_io;
        seqPointer = (seqPointer + 1) % slots;
        is_read = fioJob.rw == RwMode::Read;
        break;
      case RwMode::RandRead:
      case RwMode::RandWrite:
        req.lba = rangeStart +
            rng().uniformInt(0, slots - 1) * blocks_per_io;
        is_read = fioJob.rw == RwMode::RandRead;
        break;
      case RwMode::RandRw:
        req.lba = rangeStart +
            rng().uniformInt(0, slots - 1) * blocks_per_io;
        is_read = rng().chance(fioJob.rwMixRead / 100.0);
        break;
    }
    req.op = is_read ? afa::nvme::Op::Read : afa::nvme::Op::Write;
    return req;
}

void
FioThread::issueOne(Tick enqueued_at)
{
    IoRequest req = nextRequest();
    ++threadStats.submitted;
    if (req.op == afa::nvme::Op::Write)
        threadStats.writeBytes += req.bytes;
    else
        threadStats.readBytes += req.bytes;

    std::uint32_t slot = freeSlots.back();
    freeSlots.pop_back();
    IoSlot &io = slots[slot];
    io.submitTick = now();
    // Tag: (task+1) in the high half keeps tags unique across
    // threads; the low half is this thread's sequence number.
    io.tag = (static_cast<std::uint64_t>(task + 1) << 32) | ++ioSeq;
    req.tag = io.tag;

    unsigned cpu = sched.taskCpu(task);
    if (spanLog && spanLog->wants(afa::obs::Category::Workload))
        spanLog->record(afa::obs::Stage::SubmitQueue, io.tag,
                        enqueued_at, now(), afa::obs::cpuTrack(cpu));
    io.failed = false;
    if (fioJob.polling) {
        pollCompleteFlag = false;
        engine.submit(cpu, req, [this, slot](const IoResult &result) {
            slots[slot].failed = !result.ok();
            pollCompleteFlag = true;
        });
        pollStep(slot);
        return;
    }
    engine.submit(cpu, req, [this, slot](const IoResult &result) {
        onDeviceComplete(slot, result);
    });
}

void
FioThread::pollStep(std::uint32_t slot)
{
    enqueueWork(fioJob.pollQuantum, [this, slot] {
        if (!pollCompleteFlag) {
            pollStep(slot);
            return;
        }
        finishIo(slot);
    });
}

void
FioThread::onDeviceComplete(std::uint32_t slot, const IoResult &result)
{
    slots[slot].failed = !result.ok();
    // Completion handled on a remote CPU needs an IPI to wake us.
    Tick ipi = 0;
    if (result.cpu != sched.taskCpu(task))
        ipi = sched.config().irq.ipiCost;
    after(ipi, [this, slot] {
        enqueueWork(fioJob.reapCost, [this, slot] { finishIo(slot); });
    });
}

void
FioThread::finishIo(std::uint32_t slot)
{
    IoSlot &io = slots[slot];
    Tick latency = now() - io.submitTick;
    if (io.failed) {
        // Failed IOs (driver gave up) report an error like fio does;
        // their latency is the retry budget, not a device service
        // time, so it stays out of the latency statistics.
        ++threadStats.errors;
    } else {
        hist.record(latency);
        if (scatter)
            scatter->record(now(), latency,
                            static_cast<std::uint32_t>(dev));
    }
    if (spanLog && spanLog->wants(afa::obs::Category::Workload))
        spanLog->record(afa::obs::Stage::Complete, io.tag,
                        io.submitTick, now(), afa::obs::ssdTrack(dev),
                        0, fioJob.blockSize);
    freeSlots.push_back(slot);
    ++threadStats.completed;
    if (inflight == 0)
        afa::sim::panic("%s: inflight underflow", name().c_str());
    --inflight;
    if (now() >= endTime) {
        stopped = true;
        return;
    }
    if (fioJob.thinkTime > 0)
        after(fioJob.thinkTime, [this] { maybeSubmit(); });
    else
        maybeSubmit();
}

} // namespace afa::workload
