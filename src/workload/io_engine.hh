/**
 * @file
 * The asynchronous I/O interface a FIO thread drives (the libaio
 * analogue). The production implementation is the NVMe driver glue in
 * afa::core, which routes submissions through the PCIe fabric to the
 * SSD controllers and completions back through the IRQ subsystem.
 */

#ifndef AFA_WORKLOAD_IO_ENGINE_HH
#define AFA_WORKLOAD_IO_ENGINE_HH

#include <cstdint>
#include <functional>

#include "nvme/command.hh"
#include "sim/types.hh"

namespace afa::workload {

/** One async request. */
struct IoRequest
{
    unsigned device = 0;
    afa::nvme::Op op = afa::nvme::Op::Read;
    std::uint64_t lba = 0;
    std::uint32_t bytes = 4096;
    /** Observability tag threaded through every span this IO emits
     *  (0 = untagged). Never interpreted by the device models. */
    std::uint64_t tag = 0;
};

/**
 * Outcome of one async request, handed to the completion callback.
 *
 * @p cpu is the CPU the completion was handled on (the interrupt
 * handler's CPU, or the submitter's for a driver-side abort). @p
 * status is the NVMe completion status; a command the driver gave up
 * on after its timeout/retry budget reports Status::TimedOut without
 * the device ever answering.
 */
struct IoResult
{
    unsigned cpu = 0;
    afa::nvme::Status status = afa::nvme::Status::Success;

    bool ok() const { return status == afa::nvme::Status::Success; }
};

/**
 * Async I/O engine.
 *
 * submit() returns immediately; @p on_device_complete fires in
 * interrupt context on the CPU that handled the completion interrupt
 * (possibly a different CPU from the submitter -- the paper's
 * affinity problem). Waking the submitting thread, IPI costs and the
 * reap work are the caller's business.
 */
class IoEngine
{
  public:
    using CompleteFn = std::function<void(const IoResult &result)>;

    virtual ~IoEngine() = default;

    /** Submit from @p cpu (the submitting thread's current CPU). */
    virtual void submit(unsigned cpu, const IoRequest &request,
                        CompleteFn on_device_complete) = 0;

    /** Logical capacity of a device in 4 KiB blocks. */
    virtual std::uint64_t deviceBlocks(unsigned device) const = 0;
};

} // namespace afa::workload

#endif // AFA_WORKLOAD_IO_ENGINE_HH
