/**
 * @file
 * The asynchronous I/O interface a FIO thread drives (the libaio
 * analogue). The production implementation is the NVMe driver glue in
 * afa::core, which routes submissions through the PCIe fabric to the
 * SSD controllers and completions back through the IRQ subsystem.
 */

#ifndef AFA_WORKLOAD_IO_ENGINE_HH
#define AFA_WORKLOAD_IO_ENGINE_HH

#include <cstdint>
#include <functional>

#include "nvme/command.hh"
#include "sim/types.hh"

namespace afa::workload {

/** One async request. */
struct IoRequest
{
    unsigned device = 0;
    afa::nvme::Op op = afa::nvme::Op::Read;
    std::uint64_t lba = 0;
    std::uint32_t bytes = 4096;
    /** Observability tag threaded through every span this IO emits
     *  (0 = untagged). Never interpreted by the device models. */
    std::uint64_t tag = 0;
};

/**
 * Async I/O engine.
 *
 * submit() returns immediately; @p on_device_complete fires in
 * interrupt context on the CPU that handled the completion interrupt
 * (possibly a different CPU from the submitter -- the paper's
 * affinity problem). Waking the submitting thread, IPI costs and the
 * reap work are the caller's business.
 */
class IoEngine
{
  public:
    using CompleteFn = std::function<void(unsigned handler_cpu)>;

    virtual ~IoEngine() = default;

    /** Submit from @p cpu (the submitting thread's current CPU). */
    virtual void submit(unsigned cpu, const IoRequest &request,
                        CompleteFn on_device_complete) = 0;

    /** Logical capacity of a device in 4 KiB blocks. */
    virtual std::uint64_t deviceBlocks(unsigned device) const = 0;
};

} // namespace afa::workload

#endif // AFA_WORKLOAD_IO_ENGINE_HH
