#include "workload/pts.hh"

#include <cmath>
#include <memory>

#include "sim/logging.hh"
#include "workload/fio_thread.hh"

namespace afa::workload {

double
bestFitSlope(const double *values, std::size_t count)
{
    if (count < 2)
        return 0.0;
    double n = static_cast<double>(count);
    double sum_x = 0.0, sum_y = 0.0, sum_xy = 0.0, sum_xx = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        double x = static_cast<double>(i);
        sum_x += x;
        sum_y += values[i];
        sum_xy += x * values[i];
        sum_xx += x * x;
    }
    double denom = n * sum_xx - sum_x * sum_x;
    if (denom == 0.0)
        return 0.0;
    return (n * sum_xy - sum_x * sum_y) / denom;
}

SteadyStateResult
detectSteadyState(const std::vector<double> &series,
                  const SteadyStateParams &params)
{
    SteadyStateResult result;
    if (params.window < 2)
        afa::sim::fatal("steady state: window must be >= 2");
    if (series.size() < params.window)
        return result;
    for (std::size_t end = params.window; end <= series.size();
         ++end) {
        const double *win = series.data() + (end - params.window);
        double avg = 0.0;
        for (std::size_t i = 0; i < params.window; ++i)
            avg += win[i];
        avg /= static_cast<double>(params.window);
        if (avg == 0.0)
            continue;
        double max_exc = 0.0;
        for (std::size_t i = 0; i < params.window; ++i)
            max_exc = std::max(max_exc, std::abs(win[i] - avg));
        double slope = bestFitSlope(win, params.window);
        double slope_exc = std::abs(slope) *
            static_cast<double>(params.window - 1);
        if (max_exc <= params.excursionBand * avg &&
            slope_exc <= params.slopeBand * avg) {
            result.steady = true;
            result.steadyAtRound = end - 1;
            result.windowAverage = avg;
            result.windowSlope = slope;
            result.maxExcursion = max_exc;
            return result;
        }
        // Remember the most recent window's numbers even if not
        // steady, for reporting.
        result.windowAverage = avg;
        result.windowSlope = slope;
        result.maxExcursion = max_exc;
    }
    return result;
}

PtsRunner::PtsRunner(afa::sim::Simulator &simulator,
                     std::string runner_name,
                     afa::host::Scheduler &scheduler, IoEngine &io_engine,
                     unsigned target_device, const FioJob &job_per_round,
                     std::size_t round_count,
                     const SteadyStateParams &params)
    : SimObject(simulator, std::move(runner_name)), sched(scheduler),
      engine(io_engine), device(target_device), roundJob(job_per_round),
      totalRounds(round_count), ssParams(params), completedRounds(0)
{
    if (round_count == 0)
        afa::sim::fatal("%s: need at least one round", name().c_str());
}

void
PtsRunner::start()
{
    runRound();
}

void
PtsRunner::runRound()
{
    FioJob job = roundJob;
    job.name = afa::sim::strfmt("%s.round%zu", name().c_str(),
                                completedRounds);
    currentThread = std::make_unique<FioThread>(
        sim(), job.name, sched, engine, device, job);
    currentThread->start(now());
    pollRound();
}

void
PtsRunner::pollRound()
{
    after(afa::sim::msec(1), [this] {
        if (!currentThread->finished()) {
            pollRound();
            return;
        }
        const auto &hist = currentThread->histogram();
        PtsRound round;
        double secs = afa::sim::toSec(roundJob.runtime);
        round.iops =
            static_cast<double>(currentThread->stats().completed) /
            secs;
        round.meanLatencyUs = hist.mean() / afa::sim::kUsec;
        round.p999LatencyUs =
            afa::sim::toUsec(hist.quantile(0.999));
        results.push_back(round);
        ++completedRounds;
        currentThread.reset();
        if (completedRounds < totalRounds)
            runRound();
    });
}

SteadyStateResult
PtsRunner::iopsSteadyState() const
{
    std::vector<double> series;
    for (const auto &round : results)
        series.push_back(round.iops);
    return detectSteadyState(series, ssParams);
}

SteadyStateResult
PtsRunner::latencySteadyState() const
{
    std::vector<double> series;
    for (const auto &round : results)
        series.push_back(round.meanLatencyUs);
    return detectSteadyState(series, ssParams);
}

} // namespace afa::workload
