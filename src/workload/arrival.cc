#include "workload/arrival.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace afa::workload {

ArrivalProcess::ArrivalProcess(const ArrivalParams &params)
    : p(params), onLeft(0.0)
{
    if (!(p.ratePerSec > 0.0))
        afa::sim::fatal("arrival: ratePerSec must be positive "
                        "(got %g)", p.ratePerSec);
    bursty = p.kind == ArrivalKind::Bursty && p.burstFactor > 1.0;
    const double mean_gap = 1e9 / p.ratePerSec;
    if (bursty) {
        onGapMean = mean_gap / p.burstFactor;
        onMeanNs = static_cast<double>(p.onMean);
        if (onMeanNs <= 0.0)
            afa::sim::fatal("arrival: bursty onMean must be positive");
        // Duty cycle 1/burstFactor keeps the long-run mean rate at
        // ratePerSec: off phases average (burstFactor - 1) on-phases.
        offMeanNs = onMeanNs * (p.burstFactor - 1.0);
    } else {
        onGapMean = mean_gap;
        onMeanNs = 0.0;
        offMeanNs = 0.0;
    }
}

Tick
ArrivalProcess::nextGap(afa::sim::Rng &rng)
{
    double gap;
    if (!bursty) {
        gap = rng.exponential(onGapMean);
    } else {
        // Exact MMPP on/off: a candidate gap drawn at the on-phase
        // rate lands in the current on phase or the phase expires
        // first. Exponential gaps are memoryless, so discarding the
        // candidate that crossed the phase boundary and redrawing in
        // the next on phase is distribution-exact, not an
        // approximation.
        gap = 0.0;
        for (;;) {
            if (onLeft <= 0.0)
                onLeft = rng.exponential(onMeanNs);
            const double candidate = rng.exponential(onGapMean);
            if (candidate <= onLeft) {
                onLeft -= candidate;
                gap += candidate;
                break;
            }
            gap += onLeft + rng.exponential(offMeanNs);
            onLeft = 0.0;
        }
    }
    return std::max<Tick>(1, static_cast<Tick>(gap));
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : count(std::max<std::uint64_t>(1, n)), skew(theta)
{
    if (skew < 0.0 || skew >= 1.0)
        afa::sim::fatal("zipf: theta must be in [0, 1) (got %g)",
                        skew);
    if (skew == 0.0) {
        zetan = alpha = eta = 0.0;
        return;
    }
    zetan = 0.0;
    for (std::uint64_t i = 1; i <= count; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), skew);
    const double zeta2 = 1.0 + std::pow(0.5, skew);
    alpha = 1.0 / (1.0 - skew);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(count),
                          1.0 - skew)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
ZipfGenerator::next(afa::sim::Rng &rng) const
{
    if (skew == 0.0)
        return rng.uniformInt(0, count - 1);
    const double u = rng.uniform();
    const double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, skew))
        return 1;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        static_cast<double>(count) *
        std::pow(eta * u - eta + 1.0, alpha));
    return std::min(rank, count - 1);
}

} // namespace afa::workload
