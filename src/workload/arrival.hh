/**
 * @file
 * Arrival-time and hot-spot generators for open-loop traffic
 * (DESIGN.md §15).
 *
 * An ArrivalProcess produces the inter-arrival gaps of one traffic
 * stream: Poisson (exponential gaps at a configured mean rate) or
 * bursty — a Markov-modulated on/off process whose on phases fire at
 * burstFactor times the mean rate and whose off phases are silent,
 * duty-cycled so the long-run rate still equals ratePerSec. A
 * ZipfGenerator skews device selection toward low ranks with the
 * classic Gray et al. / YCSB incremental algorithm.
 *
 * Determinism contract: neither class owns an Rng. Every draw comes
 * from a caller-provided stream (the engine's named fork), so the
 * arrival sequence is a pure function of (--seed, stream tag) and
 * byte-identical at any --shards x --jobs. Constructing a fresh Rng
 * anywhere in arrival/open-loop code is banned by the detlint
 * `arrival-rng` rule.
 */

#ifndef AFA_WORKLOAD_ARRIVAL_HH
#define AFA_WORKLOAD_ARRIVAL_HH

#include <cstdint>

#include "sim/random.hh"
#include "sim/types.hh"

namespace afa::workload {

using afa::sim::Tick;

/** The arrival-clock shapes. */
enum class ArrivalKind : std::uint8_t {
    Poisson, ///< memoryless arrivals at the mean rate
    Bursty,  ///< Markov-modulated on/off (MMPP-2 with a silent phase)
};

/** Configuration of one arrival stream. */
struct ArrivalParams
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** Long-run mean arrival rate of this stream (ops/sec). */
    double ratePerSec = 10000.0;

    /**
     * Bursty only: the on-phase fires at burstFactor * ratePerSec;
     * the duty cycle is 1/burstFactor so the mean stays ratePerSec.
     * Values <= 1 degenerate to Poisson.
     */
    double burstFactor = 4.0;

    /** Bursty only: mean on-phase duration (exponential). */
    Tick onMean = afa::sim::msec(5);
};

/**
 * One stream's arrival clock. Pure gap state — all randomness is
 * drawn from the Rng the caller passes in, never owned here.
 */
class ArrivalProcess
{
  public:
    explicit ArrivalProcess(const ArrivalParams &params);

    /** Ticks from the previous arrival to the next one (>= 1). */
    Tick nextGap(afa::sim::Rng &rng);

    const ArrivalParams &params() const { return p; }

  private:
    ArrivalParams p;
    bool bursty;       ///< effective kind after degenerate checks
    double onGapMean;  ///< mean gap within an on phase (ns)
    double onMeanNs;   ///< mean on-phase length (ns)
    double offMeanNs;  ///< mean off-phase length (ns)
    double onLeft;     ///< remaining ns of the current on phase
};

/**
 * Zipfian rank generator over [0, n): rank 0 is the hottest. theta in
 * [0, 1); 0 degenerates to uniform. Precomputes the harmonic
 * normaliser once, so next() is O(1) (Gray et al., as used by YCSB).
 */
class ZipfGenerator
{
  public:
    explicit ZipfGenerator(std::uint64_t n = 1, double theta = 0.0);

    /** Next rank in [0, n). */
    std::uint64_t next(afa::sim::Rng &rng) const;

    double theta() const { return skew; }
    std::uint64_t size() const { return count; }

  private:
    std::uint64_t count;
    double skew;
    double zetan;
    double alpha;
    double eta;
};

} // namespace afa::workload

#endif // AFA_WORKLOAD_ARRIVAL_HH
