/**
 * @file
 * FIO-style job description and option parsing.
 *
 * The paper's workload is `rw=randread bs=4k iodepth=1 runtime=120
 * direct=1 ioengine=libaio` with cpus_allowed pinning; we accept the
 * same option vocabulary (space- or comma-separated "key=value"
 * pairs) so jobs read like fio job files.
 */

#ifndef AFA_WORKLOAD_FIO_JOB_HH
#define AFA_WORKLOAD_FIO_JOB_HH

#include <cstdint>
#include <string>

#include "host/scheduler.hh"
#include "sim/types.hh"

namespace afa::workload {

using afa::sim::Tick;

/** I/O pattern. */
enum class RwMode : std::uint8_t {
    Read,      ///< sequential read
    Write,     ///< sequential write
    RandRead,  ///< random read (the paper's workload)
    RandWrite, ///< random write
    RandRw,    ///< mixed random
};

/** Parse fio's rw= spelling. */
RwMode parseRwMode(const std::string &text);

/** Name of an RwMode (fio spelling). */
const char *rwModeName(RwMode mode);

/** One fio job (per-thread parameters). */
struct FioJob
{
    std::string name = "job0";
    RwMode rw = RwMode::RandRead;
    std::uint32_t blockSize = 4096;
    unsigned ioDepth = 1;
    Tick runtime = afa::sim::sec(120);
    /** Mixed-mode read fraction (rwmixread, percent). */
    unsigned rwMixRead = 50;
    /** Target range in logical blocks; 0 size = whole device. */
    std::uint64_t offsetBlocks = 0;
    std::uint64_t sizeBlocks = 0;
    /** cpus_allowed: pinning mask. */
    afa::host::CpuMask cpusAllowed = afa::host::kAllCpus;
    /** chrt: run the thread SCHED_FIFO at this priority (0 = CFS). */
    int rtPriority = 0;

    /** CPU cost of the submit path (io_submit + blk-mq + driver). */
    Tick submitCost = afa::sim::nsec(1800);
    /** CPU cost of reaping a completion (io_getevents return). */
    Tick reapCost = afa::sim::nsec(1200);

    /** Thinktime between IOs (0 for the paper's closed loop). */
    Tick thinkTime = 0;

    /**
     * Poll for completions instead of sleeping on the interrupt
     * (Section V's poll-vs-interrupt discussion). The thread burns
     * its CPU in pollQuantum slices until the CQE appears; requires
     * iodepth=1 and a system with polled completions enabled.
     */
    bool polling = false;

    /** CPU-work size of one poll step. */
    Tick pollQuantum = afa::sim::nsec(1000);

    /**
     * Parse "key=value" options (whitespace or comma separated) into
     * a job, starting from the defaults above. Unknown keys are
     * fatal. Supported keys: name, rw, bs, iodepth, runtime,
     * rwmixread, offset, size, cpus_allowed, rtprio, thinktime.
     */
    static FioJob parse(const std::string &spec);
};

} // namespace afa::workload

#endif // AFA_WORKLOAD_FIO_JOB_HH
