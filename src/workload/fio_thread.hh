/**
 * @file
 * One FIO worker thread: a schedulable task in a closed loop of
 * submit -> wait -> reap against one device, recording completion
 * latency (fio's clat) into a histogram and optionally a raw sample
 * log.
 *
 * The latency endpoint matches fio's: from the instant the submit
 * syscall returns until the completion has been reaped in user space
 * -- so every scheduler, IRQ, c-state and fabric delay in between is
 * part of the measurement, exactly as on the paper's testbed.
 */

#ifndef AFA_WORKLOAD_FIO_THREAD_HH
#define AFA_WORKLOAD_FIO_THREAD_HH

#include <deque>
#include <vector>

#include "host/scheduler.hh"
#include "sim/sim_object.hh"
#include "stats/histogram.hh"
#include "stats/scatter_log.hh"
#include "workload/fio_job.hh"
#include "workload/io_engine.hh"

namespace afa::obs {
class SpanLog;
} // namespace afa::obs

namespace afa::workload {

/** Per-thread result counters. */
struct FioThreadStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;
    /** IOs that completed unsuccessfully (e.g. driver timeout on a
     *  dropped-out device). Counted in `completed` too; error
     *  latencies are excluded from the histogram/scatter. */
    std::uint64_t errors = 0;
};

/** A FIO worker bound to one device. */
class FioThread : public afa::sim::SimObject
{
  public:
    FioThread(afa::sim::Simulator &simulator, std::string thread_name,
              afa::host::Scheduler &scheduler, IoEngine &engine,
              unsigned device, const FioJob &job);

    /** Begin issuing at @p start_at; stop submitting at job.runtime
     *  past that (in-flight IOs drain). */
    void start(afa::sim::Tick start_at = 0);

    /** Completion-latency histogram (ticks). */
    const afa::stats::Histogram &histogram() const { return hist; }

    /** Attach a raw sample log (Fig. 10); nullptr detaches. */
    void attachScatterLog(afa::stats::ScatterLog *log)
    {
        scatter = log;
    }

    /** Attach the obs span log; nullptr detaches. */
    void attachSpanLog(afa::obs::SpanLog *log) { spanLog = log; }

    const FioThreadStats &stats() const { return threadStats; }
    const FioJob &job() const { return fioJob; }
    unsigned device() const { return dev; }

    /** The scheduler task backing this thread (for tests). */
    afa::host::TaskId taskId() const { return task; }

    /** True once submission has stopped and all IOs completed. */
    bool finished() const
    {
        return stopped && inflight == 0 && !taskBusy;
    }

  private:
    afa::host::Scheduler &sched;
    IoEngine &engine;
    unsigned dev;
    FioJob fioJob;
    afa::host::TaskId task;
    afa::stats::Histogram hist;
    afa::stats::ScatterLog *scatter;
    afa::obs::SpanLog *spanLog = nullptr;
    FioThreadStats threadStats;

    afa::sim::Tick endTime;
    bool started;
    bool stopped;
    unsigned inflight;
    bool taskBusy;
    std::uint64_t seqPointer;
    std::uint64_t rangeStart;
    std::uint64_t rangeBlocks;

    /** Deferred CPU work items executed serially by the task. */
    struct WorkItem
    {
        afa::sim::Tick cost;
        afa::sim::EventFn then;
    };
    std::deque<WorkItem> workQueue;

    /**
     * One in-flight IO. Completion callbacks capture only [this,
     * slot-index] -- small enough for std::function's inline buffer,
     * so the submit path stays allocation-free with the per-IO tag
     * and timestamps parked here instead of in the closure.
     */
    struct IoSlot
    {
        afa::sim::Tick submitTick = 0;
        std::uint64_t tag = 0;
        bool failed = false; ///< completion carried an error status
    };
    std::vector<IoSlot> slots;          ///< ioDepth entries
    std::vector<std::uint32_t> freeSlots;
    std::uint32_t ioSeq = 0;            ///< per-thread tag sequence

    void pump();
    void enqueueWork(afa::sim::Tick cost, afa::sim::EventFn then);
    void maybeSubmit();
    void issueOne(afa::sim::Tick enqueued_at);
    IoRequest nextRequest();
    void onDeviceComplete(std::uint32_t slot, const IoResult &result);
    void pollStep(std::uint32_t slot);
    void finishIo(std::uint32_t slot);

    bool pollCompleteFlag = false;
};

} // namespace afa::workload

#endif // AFA_WORKLOAD_FIO_THREAD_HH
