#include "workload/openloop.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::workload {

using afa::sim::EventFn;
using afa::sim::Tick;

void
OpenLoopStreamStats::add(const OpenLoopStreamStats &o)
{
    arrivals += o.arrivals;
    submitted += o.submitted;
    completed += o.completed;
    dropped += o.dropped;
    errors += o.errors;
    readBytes += o.readBytes;
    writeBytes += o.writeBytes;
    for (unsigned k = 0; k < afa::obs::kActThresholds; ++k)
        exceed[k] += o.exceed[k];
    backlogPeak = std::max(backlogPeak, o.backlogPeak);
    finalBacklog += o.finalBacklog;
    inflightAtEnd += o.inflightAtEnd;
}

double
OpenLoopResult::measuredSeconds() const
{
    return afa::sim::toSec(measuredTicks);
}

double
OpenLoopResult::offeredPerSec() const
{
    const double secs = measuredSeconds();
    return secs > 0.0
        ? static_cast<double>(totals.arrivals) / secs : 0.0;
}

double
OpenLoopResult::completedPerSec() const
{
    const double secs = measuredSeconds();
    return secs > 0.0
        ? static_cast<double>(totals.completed) / secs : 0.0;
}

void
OpenLoopResult::merge(const OpenLoopResult &other)
{
    if (other.empty())
        return;
    totals.add(other.totals);
    if (perStream.size() < other.perStream.size())
        perStream.resize(other.perStream.size());
    for (std::size_t s = 0; s < other.perStream.size(); ++s)
        perStream[s].add(other.perStream[s]);
    responseHist.merge(other.responseHist);
    measuredTicks += other.measuredTicks;
}

OpenLoopEngine::OpenLoopEngine(afa::sim::Simulator &simulator,
                               std::string engine_name,
                               afa::host::Scheduler &scheduler,
                               IoEngine &io_engine,
                               unsigned device_count,
                               const OpenLoopParams &params)
    : SimObject(simulator, std::move(engine_name)), sched(scheduler),
      engine(io_engine), devices(device_count), p(params),
      zipf(device_count, params.zipfTheta)
{
    if (p.streams == 0)
        afa::sim::fatal("%s: need at least one stream",
                        name().c_str());
    if (p.cpus.empty())
        afa::sim::fatal("%s: no CPUs configured for the streams",
                        name().c_str());
    if (p.blockSize == 0 || p.blockSize % 4096 != 0)
        afa::sim::fatal("%s: blockSize must be a multiple of 4096",
                        name().c_str());
    if (p.readFraction < 0.0 || p.readFraction > 1.0)
        afa::sim::fatal("%s: readFraction must be in [0, 1]",
                        name().c_str());

    // Each stream runs its share of the aggregate arrival rate.
    ArrivalParams per_stream = p.arrival;
    per_stream.ratePerSec =
        p.arrival.ratePerSec / static_cast<double>(p.streams);

    streams.reserve(p.streams);
    streamRng.reserve(p.streams);
    for (unsigned s = 0; s < p.streams; ++s) {
        streams.emplace_back(per_stream);
        Stream &st = streams.back();
        afa::host::TaskParams tp;
        tp.name = afa::sim::strfmt("%s.s%u", name().c_str(), s);
        tp.affinity = afa::host::CpuMask(1)
            << p.cpus[s % p.cpus.size()];
        tp.traceSpans = true;
        if (p.rtPriority > 0) {
            tp.klass = afa::host::SchedClass::RealTime;
            tp.rtPriority = p.rtPriority;
        }
        st.task = sched.createTask(tp);
        streamRng.push_back(
            rng().fork(afa::sim::strfmt("stream%u", s)));
    }

    deviceBlocks.resize(devices);
    for (unsigned d = 0; d < devices; ++d) {
        deviceBlocks[d] = engine.deviceBlocks(d);
        if (deviceBlocks[d] * 4096 < p.blockSize)
            afa::sim::fatal("%s: device %u smaller than one block",
                            name().c_str(), d);
    }
    deviceHist.resize(devices);
}

void
OpenLoopEngine::start(Tick start_at)
{
    if (started)
        afa::sim::panic("%s: started twice", name().c_str());
    started = true;
    at(std::max(start_at, now()), [this] {
        endTime = now() + p.duration;
        for (unsigned s = 0; s < p.streams; ++s)
            scheduleArrival(s);
    });
}

void
OpenLoopEngine::scheduleArrival(unsigned s)
{
    const Tick gap = streams[s].arrival.nextGap(streamRng[s]);
    after(gap, [this, s] { onArrival(s); });
}

void
OpenLoopEngine::onArrival(unsigned s)
{
    Stream &st = streams[s];
    if (now() >= endTime) {
        // Arrival clocks stop at the end of the measurement; the
        // backlog and in-flight work keep draining.
        st.clockStopped = true;
        return;
    }
    ++st.stats.arrivals;

    IoRequest req;
    req.device = static_cast<unsigned>(zipf.next(streamRng[s]));
    req.bytes = p.blockSize;
    const std::uint64_t bpi = p.blockSize / 4096;
    const std::uint64_t slots = deviceBlocks[req.device] / bpi;
    req.lba = streamRng[s].uniformInt(0, slots - 1) * bpi;
    req.op = streamRng[s].chance(p.readFraction)
        ? afa::nvme::Op::Read : afa::nvme::Op::Write;

    if (st.backlog.size() >= p.maxBacklog) {
        ++st.stats.dropped;
    } else {
        st.backlog.push_back(QueuedOp{now(), req});
        st.stats.backlogPeak = std::max<std::uint64_t>(
            st.stats.backlogPeak, st.backlog.size());
        kickSubmit(s);
    }
    scheduleArrival(s);
}

void
OpenLoopEngine::enqueueWork(unsigned s, Tick cost, EventFn then)
{
    streams[s].workQueue.push_back(WorkItem{cost, std::move(then)});
    pump(s);
}

void
OpenLoopEngine::pump(unsigned s)
{
    Stream &st = streams[s];
    if (st.taskBusy || st.workQueue.empty())
        return;
    WorkItem item = std::move(st.workQueue.front());
    st.workQueue.pop_front();
    st.taskBusy = true;
    sched.runFor(st.task, item.cost,
                 [this, s, then = std::move(item.then)]() mutable {
                     streams[s].taskBusy = false;
                     if (then)
                         then();
                     pump(s);
                 });
}

void
OpenLoopEngine::kickSubmit(unsigned s)
{
    Stream &st = streams[s];
    if (st.submitQueued || st.backlog.empty() || now() >= endTime)
        return;
    st.submitQueued = true;
    enqueueWork(s, p.submitCost, [this, s] {
        streams[s].submitQueued = false;
        issueFront(s);
        kickSubmit(s);
    });
}

void
OpenLoopEngine::issueFront(unsigned s)
{
    Stream &st = streams[s];
    if (st.backlog.empty() || now() >= endTime)
        return;
    QueuedOp op = std::move(st.backlog.front());
    st.backlog.pop_front();

    ++st.stats.submitted;
    if (op.req.op == afa::nvme::Op::Write)
        st.stats.writeBytes += op.req.bytes;
    else
        st.stats.readBytes += op.req.bytes;

    const std::uint64_t tag =
        (static_cast<std::uint64_t>(st.task + 1) << 32) | ++st.seq;
    op.req.tag = tag;
    flights.emplace(tag, Flight{op.arrivalTick, op.req.device,
                                op.req.bytes, false});
    ++st.inflight;

    const unsigned cpu = sched.taskCpu(st.task);
    if (spanLog && spanLog->wants(afa::obs::Category::Workload))
        spanLog->record(afa::obs::Stage::SubmitQueue, tag,
                        op.arrivalTick, now(),
                        afa::obs::cpuTrack(cpu));
    engine.submit(cpu, op.req, [this, s, tag](const IoResult &result) {
        onDeviceComplete(s, tag, result);
    });
}

void
OpenLoopEngine::onDeviceComplete(unsigned s, std::uint64_t tag,
                                 const IoResult &result)
{
    auto it = flights.find(tag);
    if (it == flights.end())
        afa::sim::panic("%s: completion for unknown tag",
                        name().c_str());
    it->second.failed = !result.ok();
    // Completion handled on a remote CPU needs an IPI to wake us.
    Tick ipi = 0;
    if (result.cpu != sched.taskCpu(streams[s].task))
        ipi = sched.config().irq.ipiCost;
    after(ipi, [this, s, tag] {
        enqueueWork(s, p.reapCost,
                    [this, s, tag] { finishOp(s, tag); });
    });
}

void
OpenLoopEngine::finishOp(unsigned s, std::uint64_t tag)
{
    Stream &st = streams[s];
    auto it = flights.find(tag);
    if (it == flights.end())
        afa::sim::panic("%s: reap for unknown tag", name().c_str());
    const Flight flight = it->second;
    flights.erase(it);

    const Tick latency = now() - flight.arrivalTick;
    ++st.stats.completed;
    if (flight.failed) {
        // Failed IOs (driver gave up) keep their retry budget out of
        // the response statistics, like the closed-loop workers.
        ++st.stats.errors;
    } else {
        hist.record(latency);
        deviceHist[flight.device].record(latency);
        for (unsigned k = 0; k < afa::obs::kActThresholds; ++k)
            if (latency > afa::obs::actThresholdTicks(k))
                ++st.stats.exceed[k];
    }
    if (spanLog && spanLog->wants(afa::obs::Category::Workload))
        spanLog->record(afa::obs::Stage::Complete, tag,
                        flight.arrivalTick, now(),
                        afa::obs::ssdTrack(flight.device), 0,
                        flight.bytes);
    if (st.inflight == 0)
        afa::sim::panic("%s: inflight underflow", name().c_str());
    --st.inflight;
}

bool
OpenLoopEngine::finished() const
{
    if (!started)
        return false;
    for (const Stream &st : streams) {
        if (!st.clockStopped || st.taskBusy || st.inflight > 0 ||
            !st.workQueue.empty())
            return false;
    }
    return true;
}

std::vector<OpenLoopStreamStats>
OpenLoopEngine::streamStats() const
{
    std::vector<OpenLoopStreamStats> out;
    out.reserve(streams.size());
    for (const Stream &st : streams) {
        OpenLoopStreamStats snap = st.stats;
        snap.finalBacklog = st.backlog.size();
        snap.inflightAtEnd = st.inflight;
        out.push_back(snap);
    }
    return out;
}

OpenLoopStreamStats
OpenLoopEngine::totals() const
{
    OpenLoopStreamStats sum;
    for (const OpenLoopStreamStats &s : streamStats())
        sum.add(s);
    return sum;
}

OpenLoopResult
OpenLoopEngine::result() const
{
    OpenLoopResult r;
    r.perStream = streamStats();
    for (const OpenLoopStreamStats &s : r.perStream)
        r.totals.add(s);
    r.responseHist = hist;
    r.measuredTicks = p.duration;
    return r;
}

void
OpenLoopEngine::registerTelemetry(afa::obs::Telemetry &telemetry)
{
    // Counter/gauge sources read engine state that lives on shard 0,
    // as the telemetry contract requires; the offered-vs-completed
    // window series is the arrivals/completed delta pair.
    telemetry.addCounter("openloop.arrivals", [this] {
        std::uint64_t v = 0;
        for (const Stream &st : streams)
            v += st.stats.arrivals;
        return v;
    });
    telemetry.addCounter("openloop.submitted", [this] {
        std::uint64_t v = 0;
        for (const Stream &st : streams)
            v += st.stats.submitted;
        return v;
    });
    telemetry.addCounter("openloop.completed", [this] {
        std::uint64_t v = 0;
        for (const Stream &st : streams)
            v += st.stats.completed;
        return v;
    });
    telemetry.addCounter("openloop.dropped", [this] {
        std::uint64_t v = 0;
        for (const Stream &st : streams)
            v += st.stats.dropped;
        return v;
    });
    telemetry.addGauge("openloop.backlog", [this] {
        std::size_t v = 0;
        for (const Stream &st : streams)
            v += st.backlog.size();
        return static_cast<double>(v);
    });
    telemetry.addGauge("openloop.inflight", [this] {
        std::uint64_t v = 0;
        for (const Stream &st : streams)
            v += st.inflight;
        return static_cast<double>(v);
    });
}

void
OpenLoopEngine::publishMetrics(afa::obs::MetricsRegistry &registry)
    const
{
    const OpenLoopStreamStats t = totals();
    registry.addCounter("openloop.arrivals", t.arrivals);
    registry.addCounter("openloop.submitted", t.submitted);
    registry.addCounter("openloop.completed", t.completed);
    registry.addCounter("openloop.dropped", t.dropped);
    registry.addCounter("openloop.errors", t.errors);
    registry.addCounter("openloop.final_backlog", t.finalBacklog);
    registry.addCounter("openloop.inflight_at_end", t.inflightAtEnd);
}

} // namespace afa::workload
